type result = {
  executions : int;
  cycles : int;
  original_cycles : int;
  speedup : float;
  predictions : int;
  mispredictions : int;
  accuracy : float;
  profile_speedup : float;
}

(* Bumped whenever the simulation algorithm changes in a way that could
   produce different bytes from stored artifacts; the experiment layer
   hashes it into hardware job keys so stale store entries miss. *)
let version = 2

(* A stable hardware PC for a static load: block index spread across the
   address space, plus the operation's slot. Op ids at or past the 256-slot
   spread would alias a neighbouring block's PCs (block b op 256 = block
   b+1 op 0), silently sharing VP-table entries — reject them instead. *)
let pc_of ~block ~op =
  if op < 0 || op >= 256 then
    invalid_arg
      (Printf.sprintf "Trace_sim.pc_of: op id %d outside [0, 256)" op);
  (block * 256) + op

(* The phased fast lane is the default; the scalar loop stays reachable as
   the oracle for A/B and CI coverage through the [VP_NO_TRACE_FAST]
   escape hatch (any non-empty value other than "0"), mirroring
   [VP_NO_BITSET]. Both lanes produce byte-identical results. *)
let fast_enabled =
  lazy
    (match Sys.getenv_opt "VP_NO_TRACE_FAST" with
    | Some v when v <> "" && v <> "0" -> false
    | _ -> true)

(* --- Telemetry --- *)

type stats = {
  fast_runs : int;
  scalar_runs : int;
  memo_hits : int;
  engine_replays : int;
  alias_evictions : int;
}

let t_fast_runs = Atomic.make 0
let t_scalar_runs = Atomic.make 0
let t_memo_hits = Atomic.make 0
let t_engine_replays = Atomic.make 0
let t_alias_evictions = Atomic.make 0

let stats () =
  {
    fast_runs = Atomic.get t_fast_runs;
    scalar_runs = Atomic.get t_scalar_runs;
    memo_hits = Atomic.get t_memo_hits;
    engine_replays = Atomic.get t_engine_replays;
    alias_evictions = Atomic.get t_alias_evictions;
  }

let clear_stats () =
  Atomic.set t_fast_runs 0;
  Atomic.set t_scalar_runs 0;
  Atomic.set t_memo_hits 0;
  Atomic.set t_engine_replays 0;
  Atomic.set t_alias_evictions 0

let telemetry_json () =
  let s = stats () in
  Printf.sprintf
    "{\"fast_enabled\": %b, \"fast_runs\": %d, \"scalar_runs\": %d, \
     \"memo_hits\": %d, \"engine_replays\": %d, \"alias_evictions\": %d}"
    (Lazy.force fast_enabled) s.fast_runs s.scalar_runs s.memo_hits
    s.engine_replays s.alias_evictions

(* --- Bounded outcome-mask memo ---

   The memo maps an outcome mask (bit i set = predicted load i correct) to
   the block's effective cycles. Sound because the engine's timing fields
   depend only on (spec block, outcomes, CCB capacity, CCE retire width):
   mispredicted *values* change what is recomputed, never when anything
   completes. A dense array per block was 2^16 ints = 512 KB at the old
   [memo_limit = 16]; instead small blocks get a dense table (<= 32 KB)
   and larger ones a fixed open-addressed cache that stops inserting when
   full — correctness never depends on a hit. Masks are built with
   [1 lsl i], well-defined only for i <= 62 on 63-bit ints, so blocks
   beyond 62 predicted loads skip memoization entirely. *)

let direct_bits = 12
let bounded_slots = 4096 (* power of two *)
let bounded_cap = bounded_slots * 3 / 4
let mask_bits = 62

type memo =
  | No_memo
  | Direct of int array (* mask -> cycles, -1 = unset *)
  | Bounded of { keys : int array; vals : int array; mutable used : int }

let make_memo n =
  if n <= direct_bits then Direct (Array.make (1 lsl n) (-1))
  else if n <= mask_bits then
    Bounded
      {
        keys = Array.make bounded_slots (-1);
        vals = Array.make bounded_slots 0;
        used = 0;
      }
  else No_memo

let[@inline] bounded_hash mask =
  let h = mask * 0x9E3779B1 in
  (h lxor (h lsr 16)) land (bounded_slots - 1)

let memo_find m mask =
  match m with
  | No_memo -> -1
  | Direct a -> a.(mask)
  | Bounded b ->
      let i = ref (bounded_hash mask) in
      let r = ref (-2) in
      while !r = -2 do
        let k = Array.unsafe_get b.keys !i in
        if k = mask then r := Array.unsafe_get b.vals !i
        else if k = -1 then r := -1
        else i := (!i + 1) land (bounded_slots - 1)
      done;
      !r

let memo_add m mask cycles =
  match m with
  | No_memo -> ()
  | Direct a -> a.(mask) <- cycles
  | Bounded b ->
      if b.used < bounded_cap then begin
        let i = ref (bounded_hash mask) in
        while Array.unsafe_get b.keys !i <> -1 do
          i := (!i + 1) land (bounded_slots - 1)
        done;
        b.keys.(!i) <- mask;
        b.vals.(!i) <- cycles;
        b.used <- b.used + 1
      end

(* Per-block simulation state, built only for speculated blocks that
   actually execute: the compiled kernel (shared with the pipeline's
   scenario batches through the spec-unit cache —
   [Pipeline.reference_of_block] rebuilds the same position-0-valued
   reference the pipeline compiled against), the predicted loads' stream
   ids and PCs, and the outcome-mask memo. *)
type fast_block = {
  fb_compiled : Vp_engine.Compiled.t;
  fb_streams : int array; (* stream id per predicted load *)
  fb_pcs : int array; (* VP-table PC per predicted load *)
  fb_outcomes : bool array; (* scratch, one slot per predicted load *)
  fb_memo : memo;
}

let build_fast_block config p bi (spec : Pipeline.spec_eval) =
  let compiled =
    Spec_unit.compiled ?ccb_capacity:config.Config.ccb_capacity
      ~cce_retire_width:config.Config.cce_retire_width
      ~live_in:Pipeline.live_in spec.Pipeline.sb
      ~reference:(Pipeline.reference_of_block p bi)
  in
  let preds = spec.Pipeline.sb.Vp_vspec.Spec_block.predicted in
  let n = Array.length preds in
  {
    fb_compiled = compiled;
    fb_streams =
      Array.map
        (fun (pl : Vp_vspec.Spec_block.predicted_load) ->
          Option.get pl.stream)
        preds;
    fb_pcs =
      Array.map
        (fun (pl : Vp_vspec.Spec_block.predicted_load) ->
          pc_of ~block:bi ~op:pl.orig_load_id)
        preds;
    fb_outcomes = Array.make n false;
    fb_memo = make_memo n;
  }

(* --- Persistent per-pipeline simulation state ---

   Everything in [fast_block] is a pure function of the pipeline: the
   compiled kernel and position-0 reference (through the spec-unit
   cache), the predicted loads' stream ids and PCs, and the mask memo's
   mapping — which masks are *present* in the memo depends on run
   history, but mask -> cycles does not, so sharing the memo across runs
   (and across the fast and scalar lanes) changes which executions hit
   it, never the cycles they charge. Building this state dominates a
   validation run (~30 compiled lookups + reference interpretations +
   cold engine replays), so it is built once per pipeline and reused:
   repeated runs replay the engine only for masks never seen by *any*
   prior run on that pipeline.

   Concurrency: runs on the same pipeline serialize on the state's lock
   ([fb_outcomes] and the engine arena are shared scratch); runs on
   different pipelines don't contend. The registry is bounded — past
   [states_cap] pipelines it is emptied and rebuilt — so resident memo
   memory stays capped alongside the per-block [Bounded] caps. *)

type sim_state = {
  ss_lock : Mutex.t;
  ss_blocks : fast_block option array; (* lazily built, like the lanes did *)
  ss_scratch : Vp_engine.Compiled.Arena.t;
}

let states : (string * int * int, Pipeline.t * sim_state) Hashtbl.t =
  Hashtbl.create 16

let states_lock = Mutex.create ()
let states_cap = 64

let state_for (p : Pipeline.t) =
  (* Keyed on (model, seed, width) with a physical check on the pipeline:
     the pipeline memo hands out one [Pipeline.t] per sweep point, so a
     physical miss means a genuinely new pipeline took the key. *)
  let key =
    ( p.Pipeline.model.Vp_workload.Spec_model.name,
      p.Pipeline.config.Config.seed,
      p.Pipeline.config.Config.width )
  in
  Mutex.protect states_lock (fun () ->
      match Hashtbl.find_opt states key with
      | Some (pp, ss) when pp == p -> ss
      | _ ->
          if Hashtbl.length states >= states_cap then Hashtbl.reset states;
          let ss =
            {
              ss_lock = Mutex.create ();
              ss_blocks = Array.make (Array.length p.blocks) None;
              ss_scratch = Vp_engine.Compiled.Arena.create ();
            }
          in
          Hashtbl.replace states key (p, ss);
          ss)

let block_for ss config p bi spec =
  match ss.ss_blocks.(bi) with
  | Some f -> f
  | None ->
      let f = build_fast_block config p bi spec in
      ss.ss_blocks.(bi) <- Some f;
      f

(* The default table is pooled per domain: creating the ~30 hybrid
   kernels a validation run touches costs more than simulating its 500
   executions, and a [Vp_table.reset] table is observationally identical
   to a fresh one. If an unusual mix of models has populated too many
   slots the pool is replaced outright, capping resident kernel memory. *)

let pool_populated_cap = 128

let default_table =
  Domain.DLS.new_key (fun () ->
      ref (Vp_predict.Vp_table.create ~entries:1024 ()))

let pooled_table () =
  let r = Domain.DLS.get default_table in
  if Vp_predict.Vp_table.populated !r > pool_populated_cap then
    r := Vp_predict.Vp_table.create ~entries:1024 ()
  else Vp_predict.Vp_table.reset !r;
  !r

let finish ~executions ~cycles ~original_cycles ~predictions ~mispredictions
    (p : Pipeline.t) =
  {
    executions;
    cycles;
    original_cycles;
    speedup =
      (if cycles = 0 then 1.0
       else float_of_int original_cycles /. float_of_int cycles);
    predictions;
    mispredictions;
    accuracy =
      (if predictions = 0 then 0.0
       else
         float_of_int (predictions - mispredictions)
         /. float_of_int predictions);
    profile_speedup = Vp_metrics.Summary.expected_speedup (Pipeline.stats p);
  }

let trace_rng (config : Config.t) =
  let rng = Vp_util.Rng.create config.Config.seed in
  Vp_util.Rng.split_named rng "hardware-trace"

let block_weights (p : Pipeline.t) =
  Array.map (fun (b : Pipeline.block_eval) -> float_of_int b.count) p.blocks

(* --- Scalar lane: the oracle ---

   The original per-execution interpreter loop: one table call per
   predicted load in schedule order. Kept reachable under
   [VP_NO_TRACE_FAST]; test_trace_sim.ml pins the fast lane to it. *)

(* Per-stream read state: a cursor over the workload's shared arena. The
   arena may move when grown, so the cursor re-fetches it at (amortized,
   doubling) capacity steps. Every position of the fetched array is a
   valid stream value ([Workload.arena] fills its whole allocation), so
   the usable length is [Array.length c.buf] — not the requested
   [min_len], which may under-report what the arena actually holds. *)
type cursor = { mutable buf : int array; mutable pos : int }

let run_scalar ~executions ~table ss (p : Pipeline.t) =
  let config = p.config in
  let rng = trace_rng config in
  let weights = block_weights p in
  (* Each predicted load replays its stream across its block's executions,
     exactly as profiling saw it, by walking the stream's arena. Loads
     whose prediction was not selected used to draw and discard values;
     streams are private to one load, so skipping those draws is
     unobservable. Stream ids are dense, so the cursor map is a flat
     array. *)
  let cursors =
    Array.init (Vp_workload.Workload.num_streams p.workload) (fun _ ->
        { buf = [||]; pos = 0 })
  in
  let next_value id =
    let c = cursors.(id) in
    if c.pos >= Array.length c.buf then
      c.buf <-
        Vp_workload.Workload.arena p.workload id
          ~min_len:(max 64 (2 * Array.length c.buf));
    let v = c.buf.(c.pos) in
    c.pos <- c.pos + 1;
    v
  in
  let scratch = ss.ss_scratch in
  let cycles = ref 0 in
  let original_cycles = ref 0 in
  let predictions = ref 0 in
  let mispredictions = ref 0 in
  let memo_hits = ref 0 in
  let engine_replays = ref 0 in
  for _ = 1 to executions do
    let bi = Vp_util.Rng.weighted_index rng weights in
    let b = p.blocks.(bi) in
    original_cycles := !original_cycles + b.Pipeline.original_cycles;
    match b.Pipeline.spec with
    | None -> cycles := !cycles + b.Pipeline.original_cycles
    | Some spec ->
        let f = block_for ss config p bi spec in
        let n = Array.length f.fb_streams in
        let mask = ref 0 in
        for i = 0 to n - 1 do
          let actual = next_value f.fb_streams.(i) in
          let correct =
            Vp_predict.Vp_table.predict_and_train table ~pc:f.fb_pcs.(i)
              ~actual
          in
          incr predictions;
          if not correct then incr mispredictions;
          f.fb_outcomes.(i) <- correct;
          if correct && i <= mask_bits then mask := !mask lor (1 lsl i)
        done;
        let memoized = memo_find f.fb_memo !mask in
        let eff =
          if memoized >= 0 then begin
            incr memo_hits;
            memoized
          end
          else begin
            incr engine_replays;
            let r =
              Vp_engine.Compiled.run_scenario f.fb_compiled scratch
                ~outcomes:f.fb_outcomes
            in
            let eff = Config.effective_cycles config r in
            memo_add f.fb_memo !mask eff;
            eff
          end
        in
        cycles := !cycles + eff
  done;
  Atomic.incr t_scalar_runs;
  ignore (Atomic.fetch_and_add t_memo_hits !memo_hits);
  ignore (Atomic.fetch_and_add t_engine_replays !engine_replays);
  finish ~executions ~cycles:!cycles ~original_cycles:!original_cycles
    ~predictions:!predictions ~mispredictions:!mispredictions p

(* --- Fast lane: three phased kernels ---

   Soundness rests on three facts, argued in DESIGN.md § "Trace-sim
   phases":
   - the block schedule is a pure function of (seed, block weights) — the
     trace RNG's only consumer is [weighted_index], so the whole schedule
     can be drawn up front (phase 0);
   - each predicted load's value stream is private to that load, so
     occurrence [k] of a load always reads position [k] of its arena,
     independent of every other load (phase 1 gathers);
   - VP-table entries interact only through slot aliasing, so the table's
     touch sequence can be regrouped by slot as long as each slot's
     touches keep their schedule order (phase 1 kernels).

   Phase 2 then replays the schedule over the precomputed per-occurrence
   outcome bits, which is where cycles accounting and the mask memo
   live. *)

let run_fast ~executions ~table ss (p : Pipeline.t) =
  let config = p.config in
  let rng = trace_rng config in
  let weights = block_weights p in
  let nblocks = Array.length p.blocks in
  (* Phase 0: pre-draw the schedule. An explicit loop — [Array.init]'s
     evaluation order is unspecified, and the draws must consume the RNG
     in schedule order to match the scalar lane. *)
  let schedule = Array.make executions 0 in
  for i = 0 to executions - 1 do
    schedule.(i) <- Vp_util.Rng.weighted_index rng weights
  done;
  let occ = Array.make nblocks 0 in
  for i = 0 to executions - 1 do
    let bi = schedule.(i) in
    occ.(bi) <- occ.(bi) + 1
  done;
  (* Per-run view over the persistent per-block state, restricted to
     speculated blocks that actually execute this run: the scalar lane
     never touches the table (or the arenas) for a block with zero
     occurrences, so neither may we. *)
  let fast : fast_block option array = Array.make nblocks None in
  let base = Array.make nblocks 0 in
  let total_loads = ref 0 in
  for bi = 0 to nblocks - 1 do
    base.(bi) <- !total_loads;
    if occ.(bi) > 0 then
      match p.blocks.(bi).Pipeline.spec with
      | None -> ()
      | Some spec ->
          let f = block_for ss config p bi spec in
          fast.(bi) <- Some f;
          total_loads := !total_loads + Array.length f.fb_streams
  done;
  let total_loads = !total_loads in
  let ld_block = Array.make total_loads 0 in
  let ld_stream = Array.make total_loads 0 in
  let ld_pc = Array.make total_loads 0 in
  let ld_out = Array.make total_loads Bytes.empty in
  for bi = 0 to nblocks - 1 do
    match fast.(bi) with
    | None -> ()
    | Some f ->
        let g0 = base.(bi) in
        Array.iteri
          (fun li sid ->
            ld_block.(g0 + li) <- bi;
            ld_stream.(g0 + li) <- sid;
            ld_pc.(g0 + li) <- f.fb_pcs.(li);
            ld_out.(g0 + li) <- Bytes.create occ.(bi))
          f.fb_streams
  done;
  (* Phase 1: group loads by VP-table slot and run each slot's whole
     predict-and-train sequence as one kernel call. Slot groups are
     mutually independent (each owns its table entry outright), so their
     order does not matter; within a group, touches keep schedule order. *)
  let groups : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  for g = total_loads - 1 downto 0 do
    let slot = Vp_predict.Vp_table.index table ld_pc.(g) in
    Hashtbl.replace groups slot
      (g :: Option.value ~default:[] (Hashtbl.find_opt groups slot))
  done;
  Hashtbl.iter
    (fun _slot members ->
      match members with
      | [] -> ()
      | [ g ] ->
          (* The common case: one static load owns the slot. Its touch
             sequence is its arena prefix, occurrence k at position k. *)
          let len = occ.(ld_block.(g)) in
          let values =
            Vp_workload.Workload.arena p.workload ld_stream.(g) ~min_len:len
          in
          Vp_predict.Vp_table.run_slot_uniform table ~pc:ld_pc.(g) values
            ~len ~correct:ld_out.(g)
      | members ->
          (* Aliasing slot: interleave the members' touches in schedule
             order — that is the order tag evictions fire in the scalar
             lane. Gather (pc, value) per touch, run the slot, scatter
             the outcome bytes back per load. *)
          let members = Array.of_list members in
          let m = Array.length members in
          let per_block : int list array = Array.make nblocks [] in
          for j = m - 1 downto 0 do
            let bi = ld_block.(members.(j)) in
            per_block.(bi) <- j :: per_block.(bi)
          done;
          let bufs =
            Array.map
              (fun g ->
                Vp_workload.Workload.arena p.workload ld_stream.(g)
                  ~min_len:(occ.(ld_block.(g))))
              members
          in
          let touches = ref 0 in
          Array.iter
            (fun g -> touches := !touches + occ.(ld_block.(g)))
            members;
          let touches = !touches in
          let pcs = Array.make touches 0 in
          let vals = Array.make touches 0 in
          let owner = Array.make touches 0 in
          let kcnt = Array.make m 0 in
          let t = ref 0 in
          for i = 0 to executions - 1 do
            let bi = schedule.(i) in
            List.iter
              (fun j ->
                let g = members.(j) in
                pcs.(!t) <- ld_pc.(g);
                vals.(!t) <- bufs.(j).(kcnt.(j));
                owner.(!t) <- j;
                kcnt.(j) <- kcnt.(j) + 1;
                incr t)
              per_block.(bi)
          done;
          let correct = Bytes.create touches in
          Vp_predict.Vp_table.run_slot table ~pcs vals ~len:touches ~correct;
          Array.fill kcnt 0 m 0;
          for t = 0 to touches - 1 do
            let j = owner.(t) in
            Bytes.set ld_out.(members.(j)) kcnt.(j) (Bytes.get correct t);
            kcnt.(j) <- kcnt.(j) + 1
          done)
    groups;
  (* Phase 2: replay the schedule over the precomputed outcome bits,
     accumulating cycles through the per-block mask memo. *)
  let scratch = ss.ss_scratch in
  let kpos = Array.make total_loads 0 in
  let cycles = ref 0 in
  let original_cycles = ref 0 in
  let predictions = ref 0 in
  let mispredictions = ref 0 in
  let memo_hits = ref 0 in
  let engine_replays = ref 0 in
  for i = 0 to executions - 1 do
    let bi = schedule.(i) in
    let b = p.blocks.(bi) in
    original_cycles := !original_cycles + b.Pipeline.original_cycles;
    match fast.(bi) with
    | None -> cycles := !cycles + b.Pipeline.original_cycles
    | Some f ->
        let n = Array.length f.fb_streams in
        let g0 = base.(bi) in
        let mask = ref 0 in
        for li = 0 to n - 1 do
          let g = g0 + li in
          let correct =
            Bytes.unsafe_get ld_out.(g) kpos.(g) = '\001'
          in
          kpos.(g) <- kpos.(g) + 1;
          incr predictions;
          if not correct then incr mispredictions;
          f.fb_outcomes.(li) <- correct;
          if correct && li <= mask_bits then mask := !mask lor (1 lsl li)
        done;
        let memoized = memo_find f.fb_memo !mask in
        let eff =
          if memoized >= 0 then begin
            incr memo_hits;
            memoized
          end
          else begin
            incr engine_replays;
            let r =
              Vp_engine.Compiled.run_scenario f.fb_compiled scratch
                ~outcomes:f.fb_outcomes
            in
            let eff = Config.effective_cycles config r in
            memo_add f.fb_memo !mask eff;
            eff
          end
        in
        cycles := !cycles + eff
  done;
  Atomic.incr t_fast_runs;
  ignore (Atomic.fetch_and_add t_memo_hits !memo_hits);
  ignore (Atomic.fetch_and_add t_engine_replays !engine_replays);
  finish ~executions ~cycles:!cycles ~original_cycles:!original_cycles
    ~predictions:!predictions ~mispredictions:!mispredictions p

let run ?(executions = 5000) ?table ?fast (p : Pipeline.t) =
  let table =
    match table with Some t -> t | None -> pooled_table ()
  in
  let fast =
    match fast with Some f -> f | None -> Lazy.force fast_enabled
  in
  let ss = state_for p in
  let ev0 = Vp_predict.Vp_table.evictions table in
  let r =
    Mutex.protect ss.ss_lock (fun () ->
        if fast then run_fast ~executions ~table ss p
        else run_scalar ~executions ~table ss p)
  in
  ignore
    (Atomic.fetch_and_add t_alias_evictions
       (Vp_predict.Vp_table.evictions table - ev0));
  r

let render rows =
  let table =
    Vp_util.Table.create
      ~title:
        "Hardware-mode validation: run-time value-prediction table vs the \
         profile-driven expectation"
      [
        ("Benchmark", Vp_util.Table.Left);
        ("Speedup (hw)", Vp_util.Table.Right);
        ("Speedup (profile)", Vp_util.Table.Right);
        ("Accuracy (hw)", Vp_util.Table.Right);
        ("Predictions", Vp_util.Table.Right);
      ]
  in
  List.iter
    (fun (name, r) ->
      Vp_util.Table.add_row table
        [
          name;
          Printf.sprintf "%.3fx" r.speedup;
          Printf.sprintf "%.3fx" r.profile_speedup;
          Printf.sprintf "%.3f" r.accuracy;
          string_of_int r.predictions;
        ])
    rows;
  Vp_util.Table.render table
