(** The hardware value-prediction table.

    The Value Predictor box of the paper's Figure 5: a finite, direct-mapped
    table indexed by a hash of the operation's address (PC). Each entry owns
    a predictor instance of a configurable {!Predictor.kind} and a
    confidence counter. Distinct PCs can alias onto the same entry, exactly
    as in hardware; the entry is re-tagged (predictor reset) when its owner
    changes, modelling a tagged table.

    [LdPred] reads the table; the corresponding check-prediction operation
    reports the actual value back, training the entry. *)

type t

val create :
  ?entries:int ->
  ?kind:Predictor.kind ->
  ?use_confidence:bool ->
  ?tagged:bool ->
  unit ->
  t
(** Defaults: 1024 entries, hybrid stride/FCM predictor, confidence gating
    off (profile-driven speculation does not need it), tagged entries.
    [entries] must be a positive power of two. An {e untagged} table
    ([~tagged:false]) lets aliasing PCs share (and corrupt) one another's
    history — the cheaper classic design, measurable in the predictor
    examples. *)

val predict : t -> pc:int -> int option
(** Prediction for the operation at [pc], or [None] on a cold/unconfident
    entry or a tag mismatch after aliasing. *)

val train : t -> pc:int -> actual:int -> unit
(** Report the actual value; updates predictor state and confidence. *)

val predict_and_train : t -> pc:int -> actual:int -> bool
(** One dynamic execution: [true] iff the prediction was made and correct.
    Convenience wrapper used by profiling and tests. *)

val entries : t -> int

val utilization : t -> float
(** Fraction of entries that have been claimed by some PC. *)

val index : t -> int -> int
(** Table slot for a PC — the direct-mapped hash. Two PCs with the same
    index alias; the trace simulator uses this to group static loads into
    mutually independent slot batches. *)

val evictions : t -> int
(** Cumulative count of tagged aliasing evictions since [create]. *)

val reset : t -> unit
(** Return every slot to its just-created state in place: owners cleared,
    kernels and confidence counters reset (O(1) per kernel — FCM tables
    are invalidated by an epoch bump, not refilled). Allocated entries are
    kept for reuse, so a reset table behaves exactly like a fresh
    [create] with the same parameters without re-allocating any kernel;
    only the cumulative [evictions] counter keeps counting. The trace
    simulator pools its default table through this. *)

val populated : t -> int
(** Number of slots whose entry has ever been allocated (whether claimed
    right now or not) — the table's resident footprint in kernels. *)

val run_slot_uniform :
  t -> pc:int -> int array -> len:int -> correct:Bytes.t -> unit
(** Replay a slot owned by a single PC: the interleaved predict-and-train
    sequence for [values.(0 .. len-1)] in one unboxed kernel call,
    writing per-occurrence outcomes (['\001'] = predicted correctly) into
    [correct]. Equivalent to [len] calls of {!predict_and_train} with the
    same [pc]. [len = 0] does not touch (or claim) the slot. Raises
    [Invalid_argument] if [len] exceeds either buffer. *)

val run_slot :
  t -> pcs:int array -> int array -> len:int -> correct:Bytes.t -> unit
(** Like {!run_slot_uniform} for a slot shared by aliasing PCs:
    [pcs.(k)] is the PC of touch [k] in schedule order, so tag evictions
    fire in exactly the scalar path's sequence. Equivalent to [len]
    calls of {!predict_and_train}. Raises [Invalid_argument] if [len]
    exceeds any buffer. *)
