(* Direct-style predictor kernels over flat value arenas.

   The closure-record predictors ({!Iface.t}) box every prediction in an
   [int option] and pay an indirect call per [predict]/[update]; profiling
   sweeps run them over millions of stream values. These kernels keep the
   same state machines in plain records with an integer sentinel for "no
   prediction" and compute every requested predictor's hit count in a
   single pass over an [int array]. {!Predictor.accuracy} remains the
   semantic oracle (see test/test_predict.ml's kernel-vs-closure
   property). *)

let no_prediction = min_int

(* Sentinel encoding: [no_prediction] stands for [None] wherever a *value*
   (or FCM table entry) is stored, so arenas must never contain [min_int] —
   generated value streams stay far inside the int range. Deltas can't use
   the sentinel trick safely (a delta is a difference of two arbitrary
   values), so stride state carries explicit [bool] presence flags. *)

type last_s = { mutable lv : int }

type stride_s = {
  mutable s_last : int;
  mutable s_has_last : bool;
  mutable s_last_delta : int;
  mutable s_has_delta : bool;
  mutable s_confirmed : int;
  mutable s_has_confirmed : bool;
}

type fcm_s = {
  f_order : int;
  f_mask : int;
  f_history : int array; (* circular, most recent at [(head-1) mod order] *)
  mutable f_fill : int; (* values observed, saturates at order *)
  mutable f_head : int; (* next write position *)
  f_table : int array; (* slot live iff its stamp matches the epoch *)
  f_stamp : int array; (* epoch stamp per slot *)
  mutable f_epoch : int; (* bumped by reset: an O(1) table clear *)
}

type dfcm_s = { d_fcm : fcm_s; mutable d_last : int; mutable d_has_last : bool }

type hybrid_s = {
  h_stride : stride_s;
  h_fcm : fcm_s;
  mutable h_stride_hits : int;
  mutable h_fcm_hits : int;
}

type t =
  | Last of last_s
  | Stride of stride_s
  | Fcm of fcm_s
  | Dfcm of dfcm_s
  | Hybrid of hybrid_s

let make_stride () =
  {
    s_last = 0;
    s_has_last = false;
    s_last_delta = 0;
    s_has_delta = false;
    s_confirmed = 0;
    s_has_confirmed = false;
  }

let make_fcm ~order ~table_bits =
  if order < 1 then invalid_arg "Kernel.create: order < 1";
  if table_bits < 4 || table_bits > 24 then
    invalid_arg "Kernel.create: table_bits out of [4, 24]";
  {
    f_order = order;
    f_mask = (1 lsl table_bits) - 1;
    f_history = Array.make order 0;
    f_fill = 0;
    f_head = 0;
    f_table = Array.make (1 lsl table_bits) no_prediction;
    f_stamp = Array.make (1 lsl table_bits) 0;
    f_epoch = 1;
  }

let create = function
  | Predictor.Last_value -> Last { lv = no_prediction }
  | Predictor.Stride -> Stride (make_stride ())
  | Predictor.Fcm { order; table_bits } -> Fcm (make_fcm ~order ~table_bits)
  | Predictor.Dfcm { order; table_bits } ->
      Dfcm { d_fcm = make_fcm ~order ~table_bits; d_last = 0; d_has_last = false }
  | Predictor.Hybrid_stride_fcm { order; table_bits } ->
      Hybrid
        {
          h_stride = make_stride ();
          h_fcm = make_fcm ~order ~table_bits;
          h_stride_hits = 0;
          h_fcm_hits = 0;
        }

let reset_stride s =
  s.s_has_last <- false;
  s.s_has_delta <- false;
  s.s_has_confirmed <- false

(* Epoch bump instead of an [O(table)] fill: every live slot's stamp stops
   matching, which is exactly an empty table. The tagged VP table resets a
   slot's kernel on every aliasing eviction, so this must stay O(1). *)
let reset_fcm f =
  f.f_fill <- 0;
  f.f_head <- 0;
  f.f_epoch <- f.f_epoch + 1

let reset = function
  | Last s -> s.lv <- no_prediction
  | Stride s -> reset_stride s
  | Fcm f -> reset_fcm f
  | Dfcm d ->
      reset_fcm d.d_fcm;
      d.d_has_last <- false
  | Hybrid h ->
      reset_stride h.h_stride;
      reset_fcm h.h_fcm;
      h.h_stride_hits <- 0;
      h.h_fcm_hits <- 0

(* Same hash as {!Fcm.mix}/[signature] — the kernels must index the same
   table slots as the closure predictors to stay bit-equivalent. *)
let[@inline] mix h v =
  let h = h lxor (v * 0x9E3779B1) in
  let h = (h lxor (h lsr 15)) * 0x85EBCA77 in
  h lxor (h lsr 13)

let signature f =
  let h = ref 0x12345 in
  for i = 0 to f.f_order - 1 do
    let pos = (f.f_head + i) mod f.f_order in
    h := mix !h f.f_history.(pos)
  done;
  !h land f.f_mask

let[@inline] predict_stride s =
  if s.s_has_last then
    s.s_last + (if s.s_has_confirmed then s.s_confirmed else 0)
  else no_prediction

let[@inline] predict_fcm f =
  if f.f_fill >= f.f_order then begin
    let sg = signature f in
    if f.f_stamp.(sg) = f.f_epoch then f.f_table.(sg) else no_prediction
  end
  else no_prediction

(* DFCM's table holds strides; the epoch stamps mark empty slots, so even
   a stored stride equal to [min_int] cannot be misread as one. *)
let[@inline] predict_dfcm d =
  if d.d_has_last then
    let stride = predict_fcm d.d_fcm in
    if stride = no_prediction then no_prediction else d.d_last + stride
  else no_prediction

let predict = function
  | Last s -> s.lv
  | Stride s -> predict_stride s
  | Fcm f -> predict_fcm f
  | Dfcm d -> predict_dfcm d
  | Hybrid h ->
      let stride_better = h.h_stride_hits >= h.h_fcm_hits in
      let primary =
        if stride_better then predict_stride h.h_stride
        else predict_fcm h.h_fcm
      in
      if primary <> no_prediction then primary
      else if stride_better then predict_fcm h.h_fcm
      else predict_stride h.h_stride

let[@inline] update_stride s v =
  if s.s_has_last then begin
    let delta = v - s.s_last in
    if s.s_has_delta && s.s_last_delta = delta then begin
      s.s_confirmed <- delta;
      s.s_has_confirmed <- true
    end;
    s.s_last_delta <- delta;
    s.s_has_delta <- true
  end;
  s.s_last <- v;
  s.s_has_last <- true

let[@inline] update_fcm f v =
  if f.f_fill >= f.f_order then begin
    let sg = signature f in
    f.f_table.(sg) <- v;
    f.f_stamp.(sg) <- f.f_epoch
  end;
  f.f_history.(f.f_head) <- v;
  f.f_head <- (f.f_head + 1) mod f.f_order;
  if f.f_fill < f.f_order then f.f_fill <- f.f_fill + 1

let update t v =
  match t with
  | Last s -> s.lv <- v
  | Stride s -> update_stride s v
  | Fcm f -> update_fcm f v
  | Dfcm d ->
      if d.d_has_last then update_fcm d.d_fcm (v - d.d_last);
      d.d_last <- v;
      d.d_has_last <- true
  | Hybrid h ->
      let sp = predict_stride h.h_stride in
      if sp <> no_prediction && sp = v then
        h.h_stride_hits <- h.h_stride_hits + 1;
      let fp = predict_fcm h.h_fcm in
      if fp <> no_prediction && fp = v then h.h_fcm_hits <- h.h_fcm_hits + 1;
      update_stride h.h_stride v;
      update_fcm h.h_fcm v

let hit_counts ~kinds values ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length values then
    invalid_arg "Kernel.hit_counts: range out of bounds";
  let states = Array.of_list (List.map create kinds) in
  let n = Array.length states in
  let hits = Array.make n 0 in
  for i = off to off + len - 1 do
    let v = Array.unsafe_get values i in
    for j = 0 to n - 1 do
      let s = Array.unsafe_get states j in
      let p = predict s in
      if p <> no_prediction && p = v then
        Array.unsafe_set hits j (Array.unsafe_get hits j + 1);
      update s v
    done
  done;
  hits

let accuracies ~kinds values ~off ~len =
  let hits = hit_counts ~kinds values ~off ~len in
  if len = 0 then Array.map (fun _ -> 0.0) hits
  else Array.map (fun h -> float_of_int h /. float_of_int len) hits

(* --- Reusable pass: the zero-allocation profiling driver --- *)

(* [hit_counts] builds fresh kernel states per call; for an FCM kind that
   means allocating and clearing a whole table per profiled load. A [pass]
   preallocates the states once and replays any number of value ranges
   through them. For the paper's profiling pair — Stride followed by an
   order-2 FCM — the pass runs a fused loop with the state machines
   inlined (no per-value variant dispatch, the signature hashed once for
   the predict and the table write) over an {e epoch-stamped} table: a
   slot is live only if its stamp matches the current run's epoch, so the
   per-run reset is a counter bump instead of an [O(table)] clear. *)

type fused = {
  z_stride : stride_s;
  z_mask : int;
  z_table : int array;
  z_stamp : int array; (* slot live iff stamp = epoch *)
  mutable z_epoch : int;
  mutable z_h0 : int; (* order-2 history *)
  mutable z_h1 : int;
  mutable z_head : int;
  mutable z_fill : int;
}

type pass = {
  p_states : t array; (* generic path; also validates the kinds *)
  p_hits : int array;
  mutable p_len : int;
  p_fused : fused option;
}

let make_pass ~kinds =
  let states = Array.of_list (List.map create kinds) in
  let fused =
    match kinds with
    | [ Predictor.Stride; Predictor.Fcm { order = 2; table_bits } ] ->
        Some
          {
            z_stride = make_stride ();
            z_mask = (1 lsl table_bits) - 1;
            z_table = Array.make (1 lsl table_bits) no_prediction;
            z_stamp = Array.make (1 lsl table_bits) 0;
            z_epoch = 0;
            z_h0 = 0;
            z_h1 = 0;
            z_head = 0;
            z_fill = 0;
          }
    | _ -> None
  in
  {
    p_states = states;
    p_hits = Array.make (Array.length states) 0;
    p_len = 0;
    p_fused = fused;
  }

let run_pass p values ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length values then
    invalid_arg "Kernel.run_pass: range out of bounds";
  p.p_len <- len;
  match p.p_fused with
  | Some z ->
      let s = z.z_stride in
      s.s_has_last <- false;
      s.s_has_delta <- false;
      s.s_has_confirmed <- false;
      z.z_epoch <- z.z_epoch + 1;
      z.z_head <- 0;
      z.z_fill <- 0;
      let epoch = z.z_epoch in
      let table = z.z_table and stamp = z.z_stamp and mask = z.z_mask in
      let hits0 = ref 0 and hits1 = ref 0 in
      for i = off to off + len - 1 do
        let v = Array.unsafe_get values i in
        (* stride predict ([no_prediction] only when no last value) *)
        (if s.s_has_last then
           let pv =
             s.s_last + (if s.s_has_confirmed then s.s_confirmed else 0)
           in
           if pv = v then incr hits0);
        (* FCM predict and table update share one signature: the history
           is unchanged between the generic predict and update calls, so
           both hash to the same slot. *)
        (if z.z_fill >= 2 then begin
           let older = if z.z_head = 0 then z.z_h0 else z.z_h1 in
           let newer = if z.z_head = 0 then z.z_h1 else z.z_h0 in
           let sg = mix (mix 0x12345 older) newer land mask in
           if
             Array.unsafe_get stamp sg = epoch
             && Array.unsafe_get table sg = v
           then incr hits1;
           Array.unsafe_set table sg v;
           Array.unsafe_set stamp sg epoch
         end);
        (* stride update *)
        (if s.s_has_last then begin
           let delta = v - s.s_last in
           if s.s_has_delta && s.s_last_delta = delta then begin
             s.s_confirmed <- delta;
             s.s_has_confirmed <- true
           end;
           s.s_last_delta <- delta;
           s.s_has_delta <- true
         end);
        s.s_last <- v;
        s.s_has_last <- true;
        (* FCM history update *)
        if z.z_head = 0 then begin
          z.z_h0 <- v;
          z.z_head <- 1
        end
        else begin
          z.z_h1 <- v;
          z.z_head <- 0
        end;
        if z.z_fill < 2 then z.z_fill <- z.z_fill + 1
      done;
      p.p_hits.(0) <- !hits0;
      p.p_hits.(1) <- !hits1
  | None ->
      let states = p.p_states in
      let n = Array.length states in
      for j = 0 to n - 1 do
        reset (Array.unsafe_get states j)
      done;
      Array.fill p.p_hits 0 n 0;
      for i = off to off + len - 1 do
        let v = Array.unsafe_get values i in
        for j = 0 to n - 1 do
          let st = Array.unsafe_get states j in
          let pv = predict st in
          if pv <> no_prediction && pv = v then
            Array.unsafe_set p.p_hits j (Array.unsafe_get p.p_hits j + 1);
          update st v
        done
      done

let pass_size p = Array.length p.p_states

let pass_hit p j =
  if j < 0 || j >= Array.length p.p_hits then
    invalid_arg "Kernel.pass_hit: index out of range";
  p.p_hits.(j)

let pass_rate p j =
  let h = pass_hit p j in
  if p.p_len = 0 then 0.0 else float_of_int h /. float_of_int p.p_len

(* --- Slot sequence: the VP-table fast lane --- *)

(* One table entry's whole predict-and-train sequence in a single call.
   Per touch this is exactly [Vp_table]'s per-execution protocol against a
   settled entry: predict, gate on confidence, record the confidence
   hit/miss from the raw prediction, train, emit whether the (gated)
   prediction was made and correct. The trace simulator's slot batches
   replay thousands of touches per call, so the hybrid default gets a
   fused loop (component predictions computed once per touch, the FCM
   signature hashed once for the predict and the table write, no variant
   dispatch); every other kind runs the generic state machines. *)

let seq_generic t ~conf ~use_confidence values ~len ~correct =
  for k = 0 to len - 1 do
    let v = Array.unsafe_get values k in
    let p = predict t in
    let made =
      p <> no_prediction && ((not use_confidence) || Confidence.confident conf)
    in
    if p <> no_prediction then
      if p = v then Confidence.record_hit conf
      else Confidence.record_miss conf;
    update t v;
    Bytes.unsafe_set correct k (if made && p = v then '\001' else '\000')
  done

(* Hybrid stride + order-2 FCM, the table's default kind, fully inlined. *)
let seq_hybrid2 h ~conf ~use_confidence values ~len ~correct =
  let s = h.h_stride in
  let f = h.h_fcm in
  let hist = f.f_history
  and table = f.f_table
  and stamp = f.f_stamp
  and mask = f.f_mask
  and epoch = f.f_epoch in
  for k = 0 to len - 1 do
    let v = Array.unsafe_get values k in
    let sp =
      if s.s_has_last then
        s.s_last + (if s.s_has_confirmed then s.s_confirmed else 0)
      else no_prediction
    in
    let full = f.f_fill >= 2 in
    let sg =
      if full then
        mix
          (mix 0x12345 (Array.unsafe_get hist f.f_head))
          (Array.unsafe_get hist (1 - f.f_head))
        land mask
      else 0
    in
    let fp =
      if full && Array.unsafe_get stamp sg = epoch then
        Array.unsafe_get table sg
      else no_prediction
    in
    let p =
      if h.h_stride_hits >= h.h_fcm_hits then
        if sp <> no_prediction then sp else fp
      else if fp <> no_prediction then fp
      else sp
    in
    let made =
      p <> no_prediction && ((not use_confidence) || Confidence.confident conf)
    in
    if p <> no_prediction then
      if p = v then Confidence.record_hit conf
      else Confidence.record_miss conf;
    (* hybrid update: component hit counters, then both state machines *)
    if sp <> no_prediction && sp = v then
      h.h_stride_hits <- h.h_stride_hits + 1;
    if fp <> no_prediction && fp = v then h.h_fcm_hits <- h.h_fcm_hits + 1;
    (if s.s_has_last then begin
       let delta = v - s.s_last in
       if s.s_has_delta && s.s_last_delta = delta then begin
         s.s_confirmed <- delta;
         s.s_has_confirmed <- true
       end;
       s.s_last_delta <- delta;
       s.s_has_delta <- true
     end);
    s.s_last <- v;
    s.s_has_last <- true;
    (* The FCM table write reuses the predict's signature: the history is
       unchanged in between, so both hash to the same slot. *)
    if full then begin
      Array.unsafe_set table sg v;
      Array.unsafe_set stamp sg epoch
    end;
    Array.unsafe_set hist f.f_head v;
    f.f_head <- 1 - f.f_head;
    if f.f_fill < 2 then f.f_fill <- f.f_fill + 1;
    Bytes.unsafe_set correct k (if made && p = v then '\001' else '\000')
  done

let seq_predict_train t ~conf ~use_confidence values ~len ~correct =
  if len < 0 || len > Array.length values || len > Bytes.length correct then
    invalid_arg "Kernel.seq_predict_train: range out of bounds";
  match t with
  | Hybrid h when h.h_fcm.f_order = 2 ->
      seq_hybrid2 h ~conf ~use_confidence values ~len ~correct
  | _ -> seq_generic t ~conf ~use_confidence values ~len ~correct
