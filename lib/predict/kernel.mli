(** Unboxed predictor kernels: the prediction fast lane.

    Direct-style re-implementations of every {!Predictor.kind} state
    machine, exposing an integer sentinel ({!no_prediction}) instead of
    [int option] and a single-pass driver that scores all requested
    predictors over one flat value arena. Semantically pinned to the
    closure predictors: for any kind and any value sequence free of
    [min_int], {!accuracies} equals {!Predictor.accuracy} over the
    corresponding {!Predictor.instantiate} (property-tested). *)

val no_prediction : int
(** Sentinel ([min_int]) returned by {!predict} when the predictor has no
    prediction. Arena values must never equal it. *)

type t
(** Mutable kernel state for one predictor instance. *)

val create : Predictor.kind -> t
(** Fresh state. Raises [Invalid_argument] on the same parameter ranges as
    the closure predictors (FCM order < 1, table_bits outside [4, 24]). *)

val reset : t -> unit

val predict : t -> int
(** Current prediction, or {!no_prediction}. *)

val update : t -> int -> unit
(** Feed the actually observed value. *)

val hit_counts : kinds:Predictor.kind list -> int array -> off:int -> len:int -> int array
(** [hit_counts ~kinds values ~off ~len] plays [values.(off .. off+len-1)]
    through a fresh kernel per kind — all kinds in one pass — and returns
    the per-kind correct-prediction counts, in [kinds] order. Raises
    [Invalid_argument] if the range is out of bounds. *)

val accuracies : kinds:Predictor.kind list -> int array -> off:int -> len:int -> float array
(** [hit_counts] normalized by [len]; all zeros when [len = 0] (matching
    {!Predictor.accuracy} on the empty list). *)
