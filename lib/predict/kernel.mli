(** Unboxed predictor kernels: the prediction fast lane.

    Direct-style re-implementations of every {!Predictor.kind} state
    machine, exposing an integer sentinel ({!no_prediction}) instead of
    [int option] and a single-pass driver that scores all requested
    predictors over one flat value arena. Semantically pinned to the
    closure predictors: for any kind and any value sequence free of
    [min_int], {!accuracies} equals {!Predictor.accuracy} over the
    corresponding {!Predictor.instantiate} (property-tested). *)

val no_prediction : int
(** Sentinel ([min_int]) returned by {!predict} when the predictor has no
    prediction. Arena values must never equal it. *)

type t
(** Mutable kernel state for one predictor instance. *)

val create : Predictor.kind -> t
(** Fresh state. Raises [Invalid_argument] on the same parameter ranges as
    the closure predictors (FCM order < 1, table_bits outside [4, 24]). *)

val reset : t -> unit

val predict : t -> int
(** Current prediction, or {!no_prediction}. *)

val update : t -> int -> unit
(** Feed the actually observed value. *)

val hit_counts : kinds:Predictor.kind list -> int array -> off:int -> len:int -> int array
(** [hit_counts ~kinds values ~off ~len] plays [values.(off .. off+len-1)]
    through a fresh kernel per kind — all kinds in one pass — and returns
    the per-kind correct-prediction counts, in [kinds] order. Raises
    [Invalid_argument] if the range is out of bounds. *)

val accuracies : kinds:Predictor.kind list -> int array -> off:int -> len:int -> float array
(** [hit_counts] normalized by [len]; all zeros when [len = 0] (matching
    {!Predictor.accuracy} on the empty list). *)

type pass
(** A reusable scoring pass: preallocated kernel states plus per-kind hit
    accumulators. [hit_counts] allocates fresh states per call — for an
    FCM kind that is a whole prediction table per profiled load; a pass
    pays that once and replays any number of value ranges with no
    per-run allocation. For the paper's profiling pair
    ([Stride; Fcm {order = 2; _}]) the run is a fused loop over an
    epoch-stamped FCM table, so the per-run reset is a counter bump
    rather than a table clear. *)

val make_pass : kinds:Predictor.kind list -> pass
(** Build a pass for [kinds], in order. Raises [Invalid_argument] on the
    same parameter ranges as {!create}. *)

val run_pass : pass -> int array -> off:int -> len:int -> unit
(** Score [values.(off .. off+len-1)] against every kind, resetting all
    state first; results are read back with {!pass_hit} / {!pass_rate}.
    Equals {!hit_counts} with the same kinds and range. The hot loop
    allocates no minor words. Raises [Invalid_argument] if the range is
    out of bounds. *)

val pass_size : pass -> int
(** Number of kinds the pass scores. *)

val pass_hit : pass -> int -> int
(** Hit count of kind [j] (in [make_pass] order) from the last
    {!run_pass}. Raises [Invalid_argument] if [j] is out of range. *)

val pass_rate : pass -> int -> float
(** {!pass_hit} normalized by the last run's [len]; [0.] when [len = 0]. *)

val seq_predict_train :
  t ->
  conf:Confidence.t ->
  use_confidence:bool ->
  int array ->
  len:int ->
  correct:Bytes.t ->
  unit
(** One VP-table entry's whole predict-and-train sequence in a single
    call: for each of [values.(0 .. len-1)] predict, gate on the
    confidence counter when [use_confidence], record the confidence
    hit/miss from the raw (ungated) prediction, train, and store ['\001']
    in [correct.(k)] iff a gated prediction was made and equalled the
    value (['\000'] otherwise). Touch [k] is exactly
    [Vp_table.predict_and_train] against a settled (non-aliasing) entry.
    The default hybrid stride + order-2 FCM kind runs as a fused loop
    with no variant dispatch and no allocation; other kinds fall back to
    the generic state machines. Raises [Invalid_argument] if [len]
    exceeds either buffer. *)
