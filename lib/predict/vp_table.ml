(* Entries hold unboxed {!Kernel.t} state machines rather than closure
   predictors: the kernels are property-pinned to the closures
   (test_predict.ml), and exposing the state lets the trace simulator's
   fast lane replay a whole slot's predict-and-train sequence in one
   {!Kernel.seq_predict_train} call with no dispatch per touch. *)

type entry = {
  mutable owner : int option;  (* PC tag *)
  kernel : Kernel.t;
  confidence : Confidence.t;
}

type t = {
  kind : Predictor.kind;
  use_confidence : bool;
  tagged : bool;
  slots : entry option array;
      (* populated on first touch: a 1024-entry hybrid table would
         otherwise instantiate 1024 FCM second-level tables up front, when
         a trace only ever touches one slot per static load *)
  mask : int;
  mutable evictions : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(entries = 1024)
    ?(kind = Predictor.Hybrid_stride_fcm { order = 2; table_bits = 12 })
    ?(use_confidence = false) ?(tagged = true) () =
  if not (is_power_of_two entries) then
    invalid_arg "Vp_table.create: entries must be a positive power of two";
  {
    kind;
    use_confidence;
    tagged;
    slots = Array.make entries None;
    mask = entries - 1;
    evictions = 0;
  }

let index t pc =
  let h = pc * 0x9E3779B1 in
  (h lxor (h lsr 16)) land t.mask

let slot_for t pc =
  let i = index t pc in
  let e =
    match t.slots.(i) with
    | Some e -> e
    | None ->
        let e =
          {
            owner = None;
            kernel = Kernel.create t.kind;
            confidence = Confidence.create ();
          }
        in
        t.slots.(i) <- Some e;
        e
  in
  (match e.owner with
  | Some tag when tag = pc || not t.tagged -> ()
  | Some _ ->
      (* Tagged aliasing eviction: the entry is claimed by the new PC. *)
      e.owner <- Some pc;
      t.evictions <- t.evictions + 1;
      Kernel.reset e.kernel;
      Confidence.reset e.confidence
  | None -> e.owner <- Some pc);
  e

let predict t ~pc =
  let e = slot_for t pc in
  let p = Kernel.predict e.kernel in
  if
    p <> Kernel.no_prediction
    && ((not t.use_confidence) || Confidence.confident e.confidence)
  then Some p
  else None

let train t ~pc ~actual =
  let e = slot_for t pc in
  let p = Kernel.predict e.kernel in
  if p <> Kernel.no_prediction then
    if p = actual then Confidence.record_hit e.confidence
    else Confidence.record_miss e.confidence;
  Kernel.update e.kernel actual

let predict_and_train t ~pc ~actual =
  (* One [slot_for]: [predict] may evict on an alias, after which [train]'s
     lookup with the same PC is a no-op — so a single settled entry sees
     both halves, exactly as the two-call sequence did. *)
  let e = slot_for t pc in
  let p = Kernel.predict e.kernel in
  let made =
    p <> Kernel.no_prediction
    && ((not t.use_confidence) || Confidence.confident e.confidence)
  in
  if p <> Kernel.no_prediction then
    if p = actual then Confidence.record_hit e.confidence
    else Confidence.record_miss e.confidence;
  Kernel.update e.kernel actual;
  made && p = actual

let run_slot_uniform t ~pc values ~len ~correct =
  (* The scalar path never touches a slot with zero occurrences, so
     neither do we: [len = 0] must not claim (or evict) the entry. *)
  if len > 0 then begin
    let e = slot_for t pc in
    Kernel.seq_predict_train e.kernel ~conf:e.confidence
      ~use_confidence:t.use_confidence values ~len ~correct
  end

let run_slot t ~pcs values ~len ~correct =
  if
    len < 0
    || len > Array.length pcs
    || len > Array.length values
    || len > Bytes.length correct
  then invalid_arg "Vp_table.run_slot: range out of bounds";
  for k = 0 to len - 1 do
    let hit =
      predict_and_train t ~pc:(Array.unsafe_get pcs k)
        ~actual:(Array.unsafe_get values k)
    in
    Bytes.unsafe_set correct k (if hit then '\001' else '\000')
  done

let reset t =
  Array.iter
    (function
      | None -> ()
      | Some e ->
          e.owner <- None;
          Kernel.reset e.kernel;
          Confidence.reset e.confidence)
    t.slots

let populated t =
  Array.fold_left
    (fun acc e -> match e with Some _ -> acc + 1 | None -> acc)
    0 t.slots

let entries t = Array.length t.slots
let evictions t = t.evictions

let utilization t =
  let used =
    Array.fold_left
      (fun acc e ->
        match e with
        | Some e when e.owner <> None -> acc + 1
        | Some _ | None -> acc)
      0 t.slots
  in
  float_of_int used /. float_of_int (entries t)
