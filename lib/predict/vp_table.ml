type entry = {
  mutable owner : int option;  (* PC tag *)
  mutable predictor : Iface.t;
  confidence : Confidence.t;
}

type t = {
  kind : Predictor.kind;
  use_confidence : bool;
  tagged : bool;
  slots : entry option array;
      (* populated on first touch: a 1024-entry hybrid table would
         otherwise instantiate 1024 FCM second-level tables up front, when
         a trace only ever touches one slot per static load *)
  mask : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(entries = 1024)
    ?(kind = Predictor.Hybrid_stride_fcm { order = 2; table_bits = 12 })
    ?(use_confidence = false) ?(tagged = true) () =
  if not (is_power_of_two entries) then
    invalid_arg "Vp_table.create: entries must be a positive power of two";
  { kind; use_confidence; tagged; slots = Array.make entries None; mask = entries - 1 }

let index t pc =
  let h = pc * 0x9E3779B1 in
  (h lxor (h lsr 16)) land t.mask

let slot_for t pc =
  let i = index t pc in
  let e =
    match t.slots.(i) with
    | Some e -> e
    | None ->
        let e =
          {
            owner = None;
            predictor = Predictor.instantiate t.kind;
            confidence = Confidence.create ();
          }
        in
        t.slots.(i) <- Some e;
        e
  in
  (match e.owner with
  | Some tag when tag = pc || not t.tagged -> ()
  | Some _ ->
      (* Tagged aliasing eviction: the entry is claimed by the new PC. *)
      e.owner <- Some pc;
      e.predictor.Iface.reset ();
      Confidence.reset e.confidence
  | None -> e.owner <- Some pc);
  e

let predict t ~pc =
  let e = slot_for t pc in
  match e.predictor.Iface.predict () with
  | Some v when (not t.use_confidence) || Confidence.confident e.confidence ->
      Some v
  | _ -> None

let train t ~pc ~actual =
  let e = slot_for t pc in
  (match e.predictor.Iface.predict () with
  | Some v when v = actual -> Confidence.record_hit e.confidence
  | Some _ -> Confidence.record_miss e.confidence
  | None -> ());
  e.predictor.Iface.update actual

let predict_and_train t ~pc ~actual =
  let prediction = predict t ~pc in
  train t ~pc ~actual;
  match prediction with Some v -> v = actual | None -> false

let entries t = Array.length t.slots

let utilization t =
  let used =
    Array.fold_left
      (fun acc e ->
        match e with
        | Some e when e.owner <> None -> acc + 1
        | Some _ | None -> acc)
      0 t.slots
  in
  float_of_int used /. float_of_int (entries t)
