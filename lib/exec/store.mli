(** Content-addressed on-disk result cache.

    Each entry is one file under the store directory, named by the MD5 of
    the job key and laid out as

    {v
    VPEXEC-CACHE 1\n
    <version>\n
    <key>\n
    <MD5 hex of payload>\n
    <payload: Marshal of the cached value>
    v}

    Guarantees:
    - {b atomicity} — [put] writes a temp file in the store directory and
      [Sys.rename]s it over the entry, so readers never observe a partial
      write and concurrent writers of the same key are last-wins;
    - {b versioning} — the header carries the store's version string
      (default: MD5 of the running executable plus the OCaml version), so a
      rebuilt binary silently recomputes rather than deserializing
      incompatible data;
    - {b corruption recovery} — any unreadable entry (truncated file, bad
      magic, stale version, digest mismatch, undeserializable payload) is
      evicted and reported as {!Evicted}; it is never fatal. Eviction is
      rename-based, so racing readers of one corrupt entry evict it
      {e exactly once} (the losers report {!Miss}), and an entry that a
      concurrent [put] renewed after the corrupt read was taken is
      restored, not deleted.

    Type safety is the caller's contract: the store persists whatever was
    [put] under a key, and [find] returns it at whatever type the caller
    expects — exactly the [Marshal] contract. Keys must therefore encode
    everything the value depends on (the experiment layer digests the whole
    [(kind, model, config)] triple). *)

type t

type 'a lookup =
  | Hit of 'a
  | Miss  (** no entry *)
  | Evicted  (** an entry existed but was unreadable and has been removed *)

val default_dir : string
(** ["_cache"]. *)

val create : ?version:string -> dir:string -> unit -> t
(** Creates [dir] (and parents) if missing. Raises [Sys_error] if the
    directory cannot be created or is not writable. *)

val dir : t -> string
val version : t -> string

val find : t -> key:string -> 'a lookup

val put : t -> key:string -> 'a -> unit
(** Serialization failures (a value [Marshal] rejects) degrade to a no-op:
    the result is simply not cached. *)

val entry_path : t -> key:string -> string
(** Where [key]'s entry lives — exposed for tests and debugging. *)
