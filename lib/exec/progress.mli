(** Telemetry sink for a batch of jobs.

    One [t] accumulates everything a run of the {!Pool} (and the {!Store}
    lookups wrapped around it) wants to report: job state counts, cache
    hits/misses/evictions, per-job wall times and aggregate worker
    utilization. All recording entry points are mutex-protected and safe to
    call from any domain.

    Two renderings:
    - {!render_line} — a one-line live status, repainted in place on stderr
      while [live] is on (default: only when stderr is a terminal, so
      redirected runs and tests stay byte-clean);
    - {!json_summary} — a machine-readable summary for scripts and the
      acceptance check ("a warm-cache rerun shows [misses = 0]"). *)

type t

type snapshot = {
  queued : int;  (** jobs submitted over the sink's lifetime *)
  running : int;
  completed : int;  (** jobs that returned a value *)
  failed : int;
  timed_out : int;
  deduped : int;
      (** graph nodes resolved by in-flight deduplication — a submission
          whose key matched a node already declared on the same graph *)
  peak_in_flight : int;  (** highest simultaneous [running] observed *)
  cache_hits : int;
  cache_misses : int;  (** store lookups that had to compute *)
  corrupt_evicted : int;  (** cache entries evicted as unreadable *)
  nodes_evicted : int;
      (** completed graph nodes dropped by the node-cache LRU — their
          results remain in the on-disk store *)
  workers : int;  (** worker domains of the last pool run (1 = sequential) *)
  wall_total : float;  (** seconds since [create] *)
  job_wall_total : float;  (** summed per-job wall seconds *)
  job_wall_max : float;
  groups : int;  (** distinct job groups that reported a wall time *)
  fork_join_estimate_s : float;
      (** sum over groups of the group's slowest job — what a barriered
          per-experiment fork-join would cost on unboundedly many workers *)
}

val create : ?live:bool -> unit -> t
(** [live] defaults to [Unix.isatty Unix.stderr]. *)

val silent : unit -> t
(** Never paints; still counts. *)

(** {1 Recording} *)

val add_queued : t -> int -> unit
val job_started : t -> label:string -> unit
val job_done : t -> wall:float -> unit
val job_failed : t -> wall:float -> unit
val job_timed_out : t -> wall:float -> unit

val job_deduped : t -> unit
(** A graph submission was answered by an already-declared node. *)

val group_wall : t -> group:string -> wall:float -> unit
(** Record one job's wall time under its experiment group; the per-group
    maxima sum to {!snapshot.fork_join_estimate_s}. *)

val cache_hit : t -> unit
val cache_miss : t -> unit
val corrupt_evicted : t -> unit

val node_evicted : t -> unit
(** A cold completed graph node was evicted by the node-cache LRU. *)

val set_workers : t -> int -> unit

val finish : t -> unit
(** Clear the live line (no-op when not live). Call once after a batch. *)

(** {1 Reading} *)

val snapshot : t -> snapshot

val render_line : t -> string
(** e.g. ["jobs 12/16 (3 running) | cache 5 hit 11 miss | 8.2s"]. *)

val json_summary : ?extra:(string * string) list -> t -> string
(** One JSON object: [{"jobs": {...}, "cache": {...}, "wall_s": {...},
    "workers": {...}, "graph": {...}}]. Utilization is summed job wall
    time over [workers * wall_total], clamped to [0, 1]. The ["graph"]
    section reports in-flight dedup, peak concurrency and the barriered
    fork-join estimate next to the barrier-free ["wall_s".total]. Each
    [extra] pair [(name, json)] is appended verbatim as a top-level
    field — the hook callers use to attach sections this library cannot
    see (e.g. the spec-unit stripe counters, which live above it). *)
