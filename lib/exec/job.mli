(** Job descriptions and outcomes.

    A job is a keyed unit of work. The key serves three purposes:

    + it is the content address under which {!Store} caches the result;
    + it deterministically seeds the job's private RNG ({!derived_seed}),
      so any randomness a job draws depends only on {e what} the job is,
      never on submission order or on which worker domain picks it up;
    + it identifies the job in diagnostics and telemetry.

    Jobs must be self-contained: the [run] function may not touch shared
    mutable state, because the {!Pool} executes jobs concurrently across
    domains. All the experiment-layer jobs satisfy this by construction —
    each derives everything from its own [(config, model)] pair. *)

type ctx = {
  cancel : Cancel.t;
      (** poll or {!Cancel.check} this to honour the pool's watchdog *)
  seed : int;  (** {!derived_seed} of the job key *)
  rng : Vp_util.Rng.t;
      (** private RNG seeded from the key — fresh per execution *)
}

type 'a spec = {
  key : string;  (** content-address; stable across runs *)
  label : string;  (** short human-readable name for telemetry *)
  run : ctx -> 'a;
}

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the job raised; payload is the printed exception *)
  | Timed_out of string  (** the watchdog cancelled the job *)

val make : ?label:string -> key:string -> (ctx -> 'a) -> 'a spec
(** [label] defaults to a prefix of [key]. *)

val derived_seed : key:string -> int
(** Non-negative seed derived from the key alone (FNV-1a folded through
    SplitMix64 finalization). Stable across processes and OCaml versions. *)

val ctx_of : key:string -> Cancel.t -> ctx
(** Build the execution context the pool passes to [run]. *)

val outcome_ok : 'a outcome -> 'a option
val outcome_error : 'a outcome -> string option
(** [None] for [Done]; the diagnostic (prefixed ["timed out: "] for
    [Timed_out]) otherwise. *)
