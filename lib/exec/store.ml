type t = { dir : string; version : string }

type 'a lookup = Hit of 'a | Miss | Evicted

let magic = "VPEXEC-CACHE 1"

let default_dir = "_cache"

(* The executable digest makes stale entries self-invalidating: a rebuilt
   binary reads a version mismatch, evicts and recomputes. It also makes
   [Marshal.Closures] payloads safe — they are only ever read back by the
   bit-identical binary that wrote them. *)
let default_version =
  lazy
    (let exe =
       try Digest.to_hex (Digest.file Sys.executable_name)
       with Sys_error _ -> "unknown-exe"
     in
     Printf.sprintf "%s-ocaml%s" exe Sys.ocaml_version)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
        raise
          (Sys_error
             (Printf.sprintf "cannot create cache directory %s: %s" d
                (Unix.error_message e)))
  end

let create ?version ~dir () =
  let version =
    match version with Some v -> v | None -> Lazy.force default_version
  in
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "cache path %s is not a directory" dir));
  { dir; version }

let dir t = t.dir
let version t = t.version

let entry_path t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".bin")

(* Returns the file's bytes together with its inode: eviction uses the
   inode to recognize an entry that was atomically renewed (by a
   concurrent [put]) after we read the corrupt bytes, so it never unlinks
   a fresh entry on the strength of a stale read. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let ino = (Unix.fstat (Unix.descr_of_in_channel ic)).Unix.st_ino in
      (really_input_string ic (in_channel_length ic), ino))

(* [line_after s pos] returns [(line, pos_after_newline)]. *)
let line_after s pos =
  let nl = String.index_from s pos '\n' in
  (String.sub s pos (nl - pos), nl + 1)

exception Corrupt

let decode t ~key raw =
  try
    let m, pos = line_after raw 0 in
    if m <> magic then raise Corrupt;
    let v, pos = line_after raw pos in
    if v <> t.version then raise Corrupt;
    let k, pos = line_after raw pos in
    if k <> String.escaped key then raise Corrupt;
    let digest, pos = line_after raw pos in
    let payload = String.sub raw pos (String.length raw - pos) in
    if Digest.to_hex (Digest.string payload) <> digest then raise Corrupt;
    Marshal.from_string payload 0
  with _ -> raise Corrupt

let evict_seq = Atomic.make 0

(* Evict a corrupt entry {e exactly once} under concurrent readers and
   writers. Unlinking the path directly has two races: two readers that
   both saw the corrupt bytes would both count an eviction, and the slower
   one could unlink an entry a concurrent [put] had just renewed under the
   same name. Renaming the entry aside first fixes both: only one of any
   number of racing evictors wins the rename (losers get [ENOENT] and
   report a plain miss), and the inode check detects a renewed entry — we
   read corrupt bytes from one inode, but the path now holds another — and
   puts it back instead of deleting it. *)
let evict path ~ino =
  let tomb =
    Printf.sprintf "%s.evict.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add evict_seq 1)
  in
  match Unix.rename path tomb with
  | exception Unix.Unix_error (_, _, _) -> false  (* someone else evicted *)
  | () -> (
      match (Unix.stat tomb).Unix.st_ino = ino with
      | true | (exception Unix.Unix_error (_, _, _)) ->
          (try Sys.remove tomb with Sys_error _ -> ());
          true
      | false ->
          (* a concurrent [put] renewed the entry between our read and the
             rename: restore it rather than evict fresh data *)
          (try Unix.rename tomb path with Unix.Unix_error (_, _, _) -> ());
          false)

let find t ~key =
  let path = entry_path t ~key in
  match read_file path with
  | exception Sys_error _ | (exception Unix.Unix_error (_, _, _)) -> Miss
  | raw, ino -> (
      match decode t ~key raw with
      | v -> Hit v
      | exception Corrupt -> if evict path ~ino then Evicted else Miss)

let put t ~key v =
  match Marshal.to_string v [ Marshal.Closures ] with
  | exception _ -> ()
  | payload -> (
      try
        let tmp = Filename.temp_file ~temp_dir:t.dir "vpexec" ".tmp" in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc magic;
            output_char oc '\n';
            output_string oc t.version;
            output_char oc '\n';
            output_string oc (String.escaped key);
            output_char oc '\n';
            output_string oc (Digest.to_hex (Digest.string payload));
            output_char oc '\n';
            output_string oc payload);
        Sys.rename tmp (entry_path t ~key)
      with Sys_error _ -> ())
