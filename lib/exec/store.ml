type t = { dir : string; version : string }

type 'a lookup = Hit of 'a | Miss | Evicted

let magic = "VPEXEC-CACHE 1"

let default_dir = "_cache"

(* The executable digest makes stale entries self-invalidating: a rebuilt
   binary reads a version mismatch, evicts and recomputes. It also makes
   [Marshal.Closures] payloads safe — they are only ever read back by the
   bit-identical binary that wrote them. *)
let default_version =
  lazy
    (let exe =
       try Digest.to_hex (Digest.file Sys.executable_name)
       with Sys_error _ -> "unknown-exe"
     in
     Printf.sprintf "%s-ocaml%s" exe Sys.ocaml_version)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
        raise
          (Sys_error
             (Printf.sprintf "cannot create cache directory %s: %s" d
                (Unix.error_message e)))
  end

let create ?version ~dir () =
  let version =
    match version with Some v -> v | None -> Lazy.force default_version
  in
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "cache path %s is not a directory" dir));
  { dir; version }

let dir t = t.dir
let version t = t.version

let entry_path t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".bin")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [line_after s pos] returns [(line, pos_after_newline)]. *)
let line_after s pos =
  let nl = String.index_from s pos '\n' in
  (String.sub s pos (nl - pos), nl + 1)

exception Corrupt

let decode t ~key raw =
  try
    let m, pos = line_after raw 0 in
    if m <> magic then raise Corrupt;
    let v, pos = line_after raw pos in
    if v <> t.version then raise Corrupt;
    let k, pos = line_after raw pos in
    if k <> String.escaped key then raise Corrupt;
    let digest, pos = line_after raw pos in
    let payload = String.sub raw pos (String.length raw - pos) in
    if Digest.to_hex (Digest.string payload) <> digest then raise Corrupt;
    Marshal.from_string payload 0
  with _ -> raise Corrupt

let find t ~key =
  let path = entry_path t ~key in
  match read_file path with
  | exception Sys_error _ -> Miss
  | raw -> (
      match decode t ~key raw with
      | v -> Hit v
      | exception Corrupt ->
          (try Sys.remove path with Sys_error _ -> ());
          Evicted)

let put t ~key v =
  match Marshal.to_string v [ Marshal.Closures ] with
  | exception _ -> ()
  | payload -> (
      try
        let tmp = Filename.temp_file ~temp_dir:t.dir "vpexec" ".tmp" in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc magic;
            output_char oc '\n';
            output_string oc t.version;
            output_char oc '\n';
            output_string oc (String.escaped key);
            output_char oc '\n';
            output_string oc (Digest.to_hex (Digest.string payload));
            output_char oc '\n';
            output_string oc payload);
        Sys.rename tmp (entry_path t ~key)
      with Sys_error _ -> ())
