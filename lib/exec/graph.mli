(** Dependency-aware suite executor: a DAG of keyed jobs over one
    {!Context}.

    Experiments declare their work as {e nodes} — a content-addressed job
    key, a payload closure, dependencies on other nodes and (typically) a
    reducer node that folds dependency values into the experiment's result
    — instead of running one barriered {!Context.map_exn} batch each. One
    scheduler then drains every declared node through the {!Pool}
    machinery with no inter-experiment barriers: a reducer becomes ready
    the moment its own dependencies finish, regardless of how many
    unrelated nodes are still queued.

    {b In-flight deduplication.} Declaring a node whose [key] is already
    on the graph returns the {e existing} node ({!Progress.job_deduped} is
    recorded): two experiments submitting the same job share one
    computation before it ever lands in the {!Store}. The store dedups
    completed results across runs; the graph dedups concurrent intent
    within one. Since the key is the only identity, the declared return
    types must agree for a given key — the same contract as the store's
    [Marshal]-typed payloads, where type safety is the caller's side of
    the bargain.

    {b Priority.} Ready nodes run in critical-path order: a node's
    priority is the length of the longest dependency chain hanging off it
    (a leaf three reducers deep outranks a free-standing leaf), with the
    declaration sequence breaking ties. With [jobs = 1] the drain is fully
    deterministic — nodes run one at a time in that order — which keeps
    sequential output the byte-identical reference for any [--jobs N].

    {b Failure.} A node that raises (or times out under the context's
    watchdog) poisons its transitive dependents: they are marked failed
    without running. Independent nodes are unaffected; {!await} on a
    failed or poisoned node raises {!Context.Job_failed}.

    {b Cycles.} Dependency edges are checked at declaration; an edge that
    would close a cycle raises {!Cycle} with the offending key path, so a
    cyclic suite fails fast rather than deadlocking the drain. *)

type t
(** A graph of declared nodes bound to one {!Context.t}. Declare with
    {!node}/{!add_dep}, run with {!await} or {!drain}. Not reentrant:
    declaring or awaiting from inside a node's payload is unsupported. *)

type 'a node
(** A declared job producing an ['a]. The phantom type is the caller's
    claim — see the dedup contract above. *)

type packed
(** An existentially packed node, for heterogeneous dependency lists. *)

exception Cycle of string list
(** The key path of the rejected dependency cycle, source first. *)

val create : Context.t -> t
(** An empty graph over the context's pool width, store, progress sink and
    watchdog. *)

val context : t -> Context.t

val pack : _ node -> packed

val node :
  t ->
  ?label:string ->
  ?group:string ->
  ?cache:bool ->
  key:string ->
  ?deps:packed list ->
  (Job.ctx -> 'a) ->
  'a node
(** Declare (or dedup onto) the node for [key]. [deps] must finish before
    the payload runs; read their results inside the payload with {!value}.
    [cache ]defaults to [true]: the payload is wrapped with the context's
    {!Store} lookup exactly like a {!Context.map} job. Reducers pass
    [~cache:false] — their inputs are already cached or deduped, and a
    store round-trip on the fold would just marshal the same data twice.
    [group] names the experiment for {!Progress.group_wall} telemetry.
    Dedup keeps the first declaration's label, group, cache flag, payload
    {e and} dependencies; later [deps] are still linked (and
    cycle-checked) so the union of declared orderings holds. *)

val value : 'a node -> 'a
(** The node's result. Only valid once the node finished successfully —
    inside a dependent's payload, or after {!await}/{!drain} — and raises
    [Invalid_argument] otherwise. *)

val add_dep : t -> packed -> on:packed -> unit
(** [add_dep t n ~on:d] orders [d] before [n] after both were declared.
    Raises {!Cycle} (and leaves the graph unchanged) if [d] already
    depends on [n]; raises [Invalid_argument] if [n] is running or
    finished. *)

val await : t -> 'a node -> 'a
(** The node's result, draining the {e whole} graph first if it has not
    finished — every declared node runs, not just the awaited subtree, so
    a sequence of [await]s over one graph executes barrier-free: later
    experiments' nodes interleave with the first await's drain. With
    {!start_workers} active, [await] instead blocks until the resident
    workers finish the node. Raises {!Context.Job_failed} if the node
    failed, timed out or was poisoned. *)

val drain : t -> unit
(** Run every unfinished node; referenced results stay readable through
    {!value}. Raises {!Cycle} if the drain stalls with unfinished nodes —
    defensive, {!node}/{!add_dep} already reject cyclic edges. Raises
    [Invalid_argument] while resident workers ({!start_workers}) run. *)

val on_complete : t -> 'a node -> (('a, string) result -> unit) -> unit
(** Subscribe to the node's completion: the callback fires exactly once
    with [Ok value] or [Error diagnostic] (failure, timeout or poisoning),
    immediately if the node has already finished. Callbacks run outside
    the graph mutex but {e on whichever thread finishes the node} — a
    worker domain, or the declaring thread when declaration itself settles
    the node (dedup onto a finished node, poisoning by a failed
    dependency). They must be fast, must not raise and must not call back
    into the graph; hand the result off to your own queue. This is how the
    serve daemon streams results: one subscription per request artifact,
    each callback enqueueing a response frame. *)

(** {1 Resident workers}

    The daemon-mode drain: instead of draining the declared nodes and
    returning, {!start_workers} keeps [jobs] worker domains alive that
    execute ready nodes {e as they are declared}, indefinitely. Clients
    (the serve loop) declare nodes and subscribe with {!on_complete};
    overlapping declarations dedup in flight exactly as in batch mode.
    {!stop_workers} initiates a graceful shutdown: workers finish
    everything already runnable (in-flight {e and} queued), then exit. *)

val start_workers : t -> unit
(** Spawn the context's [jobs] resident worker domains (at least one).
    Raises [Invalid_argument] if they are already running. *)

val stop_workers : t -> unit
(** Signal the resident workers to finish all runnable work and exit, and
    join them. No-op when none are running. *)

val size : t -> int
(** Nodes declared (dedup hits not counted). *)

val retained : t -> int
(** Nodes currently held by the graph (declared minus LRU-evicted). *)

val set_node_cap : t -> int option -> unit
(** Bound the number of retained nodes. Beyond the cap, the coldest
    successfully finished nodes (least recently declared, deduped onto or
    completed) are evicted in batches down to 90% of it: their [by_key]
    entry and edges are dropped, {!Progress.node_evicted} is recorded,
    and a later declaration of the same key recomputes — store-cached
    payloads answer from the warm on-disk store, so eviction bounds
    resident memory without forgetting results. Unfinished and failed
    nodes are never evicted (failures stay sticky for {!await});
    dependents are unaffected because they capture their dependencies'
    values directly. [None] (the default) retains every node for the
    graph's lifetime. *)
