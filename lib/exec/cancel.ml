type t = { flag : string option Atomic.t; deadline : float option }

exception Cancelled of string

let create ?deadline () = { flag = Atomic.make None; deadline }

let none = create ()

let cancel t ~reason =
  ignore (Atomic.compare_and_set t.flag None (Some reason))

let timed_out t =
  match t.deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let cancelled t = Atomic.get t.flag <> None

let should_stop t = cancelled t || timed_out t

let reason t = Atomic.get t.flag

let check t =
  match Atomic.get t.flag with
  | Some r -> raise (Cancelled r)
  | None ->
      if timed_out t then
        raise (Cancelled "watchdog deadline exceeded")
