type ctx = { cancel : Cancel.t; seed : int; rng : Vp_util.Rng.t }

type 'a spec = { key : string; label : string; run : ctx -> 'a }

type 'a outcome = Done of 'a | Failed of string | Timed_out of string

let derived_seed ~key =
  (* FNV-1a over the key; the RNG's own [create] runs the result through a
     SplitMix64 finalizer, so nearby keys still yield unrelated streams. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    key;
  Int64.to_int !h land max_int

let make ?label ~key run =
  let label =
    match label with
    | Some l -> l
    | None -> if String.length key <= 24 then key else String.sub key 0 24
  in
  { key; label; run }

let ctx_of ~key cancel =
  let seed = derived_seed ~key in
  { cancel; seed; rng = Vp_util.Rng.create seed }

let outcome_ok = function Done v -> Some v | Failed _ | Timed_out _ -> None

let outcome_error = function
  | Done _ -> None
  | Failed m -> Some m
  | Timed_out m -> Some ("timed out: " ^ m)
