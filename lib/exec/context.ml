type t = {
  jobs : int;
  store : Store.t option;
  progress : Progress.t;
  watchdog_s : float option;
}

exception Job_failed of { key : string; label : string; message : string }

let () =
  Printexc.register_printer (function
    | Job_failed { key; label; message } ->
        Some (Printf.sprintf "job %s (key %s) failed: %s" label key message)
    | _ -> None)

let create ?(jobs = 1) ?store ?progress ?watchdog_s () =
  let progress =
    match progress with Some p -> p | None -> Progress.silent ()
  in
  { jobs; store; progress; watchdog_s }

let sequential = create ()

(* A cached job resolves entirely inside the worker, so store I/O
   parallelizes along with the computation. *)
let with_store t (spec : 'a Job.spec) : 'a Job.spec =
  match t.store with
  | None -> spec
  | Some store ->
      {
        spec with
        run =
          (fun ctx ->
            let lookup : 'a Store.lookup = Store.find store ~key:spec.key in
            match lookup with
            | Store.Hit v ->
                Progress.cache_hit t.progress;
                v
            | Store.Miss | Store.Evicted ->
                if lookup = Store.Evicted then
                  Progress.corrupt_evicted t.progress;
                Progress.cache_miss t.progress;
                let v = spec.run ctx in
                Store.put store ~key:spec.key v;
                v);
      }

let map t specs =
  let specs = List.map (with_store t) specs in
  let outcomes =
    Pool.run ?watchdog_s:t.watchdog_s ~progress:t.progress ~jobs:t.jobs specs
  in
  Progress.finish t.progress;
  outcomes

let map_exn t specs =
  let outcomes = map t specs in
  List.map2
    (fun (spec : _ Job.spec) outcome ->
      match (outcome : _ Job.outcome) with
      | Job.Done v -> v
      | Job.Failed message ->
          raise (Job_failed { key = spec.key; label = spec.label; message })
      | Job.Timed_out message ->
          raise
            (Job_failed
               {
                 key = spec.key;
                 label = spec.label;
                 message = "timed out: " ^ message;
               }))
    specs outcomes
