(* The suite job graph. All structural state — nodes, edges, readiness,
   the priority heap — lives behind one graph mutex; payloads execute
   outside it (through [Pool.execute], so job accounting, RNG contexts and
   the watchdog behave exactly as in a flat pool batch). Results are
   stored as [Obj.t]: the key is the node's only identity under in-flight
   dedup, so the phantom type on ['a node] is the caller's contract, as
   with the store's [Marshal] payloads. *)

exception Cycle of string list

let () =
  Printexc.register_printer (function
    | Cycle path ->
        Some
          (Printf.sprintf "dependency cycle: %s" (String.concat " -> " path))
    | _ -> None)

type status =
  | Pending  (** has unfinished dependencies *)
  | Ready  (** in the heap, waiting for a worker *)
  | Running
  | Finished of (Obj.t, string) result

type nd = {
  id : int;  (** declaration sequence number — the deterministic tiebreak *)
  key : string;
  label : string;
  group : string option;
  cache : bool;
  payload : Job.ctx -> Obj.t;
  mutable status : status;
  mutable deps : nd list;
  mutable dependents : nd list;
  mutable unmet : int;  (** unfinished dependencies *)
  mutable crit : int;  (** critical-path priority: 1 + longest dependent chain *)
  mutable waiters : ((Obj.t, string) result -> unit) list;
      (** completion subscriptions; fired once, outside the graph mutex *)
  mutable stamp : int;
      (** LRU recency: the graph tick of the last declaration (dedup hit)
          or completion that touched this node *)
}

type 'a node = nd
type packed = nd

let pack n = n

(* Heap entries snapshot (crit, id) at push time. A node whose priority
   rises while Ready is pushed again; the stale lower-priority entry pops
   later and is skipped because the node is no longer Ready. *)
type entry = { e_crit : int; e_id : int; e_nd : nd }

module Heap = struct
  type t = { mutable a : entry array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  (* max-heap: higher crit first, then earlier declaration *)
  let above x y = x.e_crit > y.e_crit || (x.e_crit = y.e_crit && x.e_id < y.e_id)

  let push h e =
    if h.n = Array.length h.a then begin
      let a' = Array.make (max 16 (2 * h.n)) e in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      above h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.n && above h.a.(l) h.a.(!best) then best := l;
        if r < h.n && above h.a.(r) h.a.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = h.a.(!best) in
          h.a.(!best) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !best
        end
      done;
      Some top
    end
end

type t = {
  ctx : Context.t;
  mutex : Mutex.t;
  cond : Condition.t;
  by_key : (string, nd) Hashtbl.t;
  heap : Heap.t;
  mutable next_id : int;
  mutable pending : int;  (** nodes not yet [Finished] *)
  mutable running_count : int;
  mutable stalled : bool;  (** defensive: drain found no runnable work *)
  mutable fired : (unit -> unit) list;
      (** waiter invocations queued under the mutex, run after release *)
  mutable resident : unit Domain.t array option;
      (** worker domains of {!start_workers}, while running *)
  mutable stop : bool;  (** resident workers: exit once nothing is runnable *)
  mutable node_cap : int option;
      (** LRU bound on retained nodes; [None] keeps every node forever *)
  mutable tick : int;  (** monotonic recency clock for [nd.stamp] *)
}

let create ctx =
  {
    ctx;
    mutex = Mutex.create ();
    cond = Condition.create ();
    by_key = Hashtbl.create 64;
    heap = Heap.create ();
    next_id = 0;
    pending = 0;
    running_count = 0;
    stalled = false;
    fired = [];
    resident = None;
    stop = false;
    node_cap = None;
    tick = 0;
  }

let context t = t.ctx
let size t = t.next_id
let retained t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.by_key)
let set_node_cap t cap = Mutex.protect t.mutex (fun () -> t.node_cap <- cap)

let touch t n =
  t.tick <- t.tick + 1;
  n.stamp <- t.tick

(* --- node-cache LRU; graph mutex held --- *)

(* Eviction drops the graph's references to a cold, successfully finished
   node: its [by_key] entry plus the edge lists tying it to neighbours.
   Dependents read leaf values through direct [nd] refs captured in their
   payload closures, never through [by_key], so unlinking is purely a
   memory/identity decision — the record stays alive exactly as long as
   some closure still needs it. A later declaration of the same key
   recomputes; store-cached leaves answer from the warm on-disk store, so
   eviction trades a cheap re-render for bounded resident memory. Only
   [Finished (Ok _)] nodes with no waiters are candidates: failed nodes
   keep their sticky diagnostic for [await], unfinished nodes are live
   work. Removing a finished node's edges cannot hide a dependency cycle:
   a finished node's dep edges are frozen, and every path through it
   reaches only other finished nodes — never a node that could still gain
   an edge. *)
let evictable n =
  match n.status with
  | Finished (Ok _) -> n.waiters = []
  | Pending | Ready | Running | Finished (Error _) -> false

let unlink_evicted n =
  List.iter
    (fun d -> d.dependents <- List.filter (fun x -> not (x == n)) d.dependents)
    n.deps;
  List.iter
    (fun d -> d.deps <- List.filter (fun x -> not (x == n)) d.deps)
    n.dependents;
  n.deps <- [];
  n.dependents <- []

(* Triggered past the cap, evict down to 90% of it (batching amortizes the
   O(n log n) candidate sort), oldest stamps first. *)
let maybe_evict t =
  match t.node_cap with
  | None -> ()
  | Some cap when Hashtbl.length t.by_key <= cap -> ()
  | Some cap ->
      let candidates =
        Hashtbl.fold
          (fun _ n acc -> if evictable n then n :: acc else acc)
          t.by_key []
      in
      let target = max 1 (cap * 9 / 10) in
      let excess = Hashtbl.length t.by_key - target in
      if excess > 0 && candidates <> [] then begin
        let arr = Array.of_list candidates in
        Array.sort (fun a b -> compare a.stamp b.stamp) arr;
        let k = min excess (Array.length arr) in
        for i = 0 to k - 1 do
          let n = arr.(i) in
          Hashtbl.remove t.by_key n.key;
          unlink_evicted n;
          Progress.node_evicted t.ctx.Context.progress
        done
      end

(* --- structural helpers; graph mutex held --- *)

let rec dep_path src target =
  if src == target then Some [ src.key ]
  else
    List.fold_left
      (fun acc d ->
        match acc with
        | Some _ -> acc
        | None -> (
            match dep_path d target with
            | Some path -> Some (src.key :: path)
            | None -> None))
      None src.deps

let make_ready t n =
  n.status <- Ready;
  Heap.push t.heap { e_crit = n.crit; e_id = n.id; e_nd = n };
  Condition.broadcast t.cond

let rec bump_crit t n c =
  if n.crit < c then begin
    n.crit <- c;
    (match n.status with
    | Ready -> Heap.push t.heap { e_crit = n.crit; e_id = n.id; e_nd = n }
    | Pending | Running | Finished _ -> ());
    List.iter (fun d -> bump_crit t d (c + 1)) n.deps
  end

(* Completion subscriptions fire outside the mutex: finishing a node (in
   any way — success, failure, poisoning) moves its waiters onto [t.fired]
   as ready-to-run thunks, and every path that released the mutex flushes
   the queue. Any thread may flush; each thunk runs exactly once. *)
let enqueue_waiters t n result =
  match n.waiters with
  | [] -> ()
  | ws ->
      n.waiters <- [];
      t.fired <-
        List.rev_append (List.rev_map (fun w () -> w result) ws) t.fired

let flush_fired t =
  match Mutex.protect t.mutex (fun () ->
      match t.fired with
      | [] -> []
      | fs ->
          t.fired <- [];
          fs)
  with
  | [] -> ()
  | fs -> List.iter (fun f -> f ()) (List.rev fs)

let rec poison t n ~root ~msg =
  match n.status with
  | Pending | Ready ->
      let msg' = Printf.sprintf "poisoned: dependency %s failed: %s" root msg in
      n.status <- Finished (Error msg');
      enqueue_waiters t n (Error msg');
      Condition.broadcast t.cond;
      t.pending <- t.pending - 1;
      (* account the node as a failed job: it was queued and will never
         run, so started/failed keeps the progress ledger balanced *)
      Progress.job_started t.ctx.Context.progress ~label:n.label;
      Progress.job_failed t.ctx.Context.progress ~wall:0.0;
      List.iter (fun d -> poison t d ~root ~msg) n.dependents
  | Running | Finished _ -> ()

let link t n ~on:d =
  match n.status with
  | Running | Finished _ -> ()  (* ordering already satisfied *)
  | Pending | Ready ->
      if d == n then raise (Cycle [ n.key ]);
      if not (List.memq d n.deps) then begin
        (match dep_path d n with
        | Some path -> raise (Cycle (n.key :: path))
        | None -> ());
        n.deps <- d :: n.deps;
        bump_crit t d (n.crit + 1);
        match d.status with
        | Finished (Ok _) -> ()
        | Finished (Error msg) -> poison t n ~root:d.key ~msg
        | Pending | Ready | Running ->
            d.dependents <- n :: d.dependents;
            n.unmet <- n.unmet + 1;
            (* a Ready node that gains a live dependency is un-readied;
               its stale heap entry is skipped on pop *)
            if n.status = Ready then n.status <- Pending
      end

let fail_node t n msg =
  n.status <- Finished (Error msg);
  enqueue_waiters t n (Error msg);
  Condition.broadcast t.cond;
  t.pending <- t.pending - 1;
  List.iter (fun d -> poison t d ~root:n.key ~msg) n.dependents

let settle t n (outcome : Obj.t Job.outcome) =
  match outcome with
  | Job.Done v ->
      n.status <- Finished (Ok v);
      touch t n;
      enqueue_waiters t n (Ok v);
      t.pending <- t.pending - 1;
      List.iter
        (fun d ->
          match d.status with
          | Pending ->
              d.unmet <- d.unmet - 1;
              if d.unmet = 0 then make_ready t d
          | Ready | Running | Finished _ -> ())
        n.dependents;
      maybe_evict t
  | Job.Failed msg -> fail_node t n msg
  | Job.Timed_out msg -> fail_node t n ("timed out: " ^ msg)

let rec pop_ready t =
  match Heap.pop t.heap with
  | None -> None
  | Some e -> (
      match e.e_nd.status with
      | Ready ->
          e.e_nd.status <- Running;
          t.running_count <- t.running_count + 1;
          Some e.e_nd
      | Pending | Running | Finished _ -> pop_ready t)

(* --- declaration --- *)

let node t ?label ?group ?(cache = true) ~key ?(deps = []) payload =
  let n =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.by_key key with
        | Some existing ->
            Progress.job_deduped t.ctx.Context.progress;
            touch t existing;
            List.iter (fun d -> link t existing ~on:d) deps;
            existing
        | None ->
            let label =
              match label with
              | Some l -> l
              | None ->
                  if String.length key <= 24 then key else String.sub key 0 24
            in
            let n =
              {
                id = t.next_id;
                key;
                label;
                group;
                cache;
                payload = (fun ctx -> Obj.repr (payload ctx));
                status = Pending;
                deps = [];
                dependents = [];
                unmet = 0;
                crit = 1;
                waiters = [];
                stamp = 0;
              }
            in
            t.next_id <- t.next_id + 1;
            t.pending <- t.pending + 1;
            Hashtbl.add t.by_key key n;
            touch t n;
            Progress.add_queued t.ctx.Context.progress 1;
            List.iter (fun d -> link t n ~on:d) deps;
            if n.unmet = 0 then make_ready t n;
            maybe_evict t;
            n)
  in
  (* linking onto an already-failed dependency poisons dependents, which
     may have subscriptions to fire *)
  flush_fired t;
  n

let add_dep t n ~on =
  Mutex.protect t.mutex (fun () ->
      match n.status with
      | Running | Finished _ ->
          invalid_arg "Graph.add_dep: node already running or finished"
      | Pending | Ready -> link t n ~on);
  flush_fired t

let on_complete t (n : 'a node) (f : ('a, string) result -> unit) =
  let immediate =
    Mutex.protect t.mutex (fun () ->
        match n.status with
        | Finished (Ok v) -> Some (Ok (Obj.obj v : 'a))
        | Finished (Error msg) -> Some (Error msg)
        | Pending | Ready | Running ->
            n.waiters <-
              (fun (r : (Obj.t, string) result) ->
                f (match r with Ok v -> Ok (Obj.obj v) | Error e -> Error e))
              :: n.waiters;
            None)
  in
  match immediate with None -> () | Some r -> f r

let value (n : 'a node) : 'a =
  match n.status with
  | Finished (Ok v) -> Obj.obj v
  | Finished (Error msg) ->
      invalid_arg
        (Printf.sprintf "Graph.value: node %s failed: %s" n.label msg)
  | Pending | Ready | Running ->
      invalid_arg
        (Printf.sprintf "Graph.value: node %s has not finished" n.label)

(* --- execution --- *)

let execute_node t n =
  let spec = Job.make ~label:n.label ~key:n.key n.payload in
  let spec = if n.cache then Context.with_store t.ctx spec else spec in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Pool.execute ?watchdog_s:t.ctx.Context.watchdog_s
      ~progress:t.ctx.Context.progress spec
  in
  (match n.group with
  | Some group ->
      Progress.group_wall t.ctx.Context.progress ~group
        ~wall:(Unix.gettimeofday () -. t0)
  | None -> ());
  outcome

let stall_keys t =
  List.sort compare
    (Hashtbl.fold
       (fun _ n acc ->
         match n.status with Finished _ -> acc | _ -> n.key :: acc)
       t.by_key [])

let drain_sequential t =
  let rec loop () =
    match Mutex.protect t.mutex (fun () -> pop_ready t) with
    | Some n ->
        let outcome = execute_node t n in
        Mutex.protect t.mutex (fun () ->
            t.running_count <- t.running_count - 1;
            settle t n outcome);
        flush_fired t;
        loop ()
    | None -> ()
  in
  loop ()

let drain_parallel t =
  let worker () =
    let rec loop () =
      let action =
        Mutex.protect t.mutex (fun () ->
            let rec get () =
              if t.pending = 0 || t.stalled then `Stop
              else
                match pop_ready t with
                | Some n -> `Run n
                | None ->
                    if t.running_count = 0 then begin
                      (* nothing ready, nothing running, work pending:
                         the drain can make no further progress *)
                      t.stalled <- true;
                      Condition.broadcast t.cond;
                      `Stop
                    end
                    else begin
                      Condition.wait t.cond t.mutex;
                      get ()
                    end
            in
            get ())
      in
      match action with
      | `Stop -> ()
      | `Run n ->
          let outcome = execute_node t n in
          Mutex.protect t.mutex (fun () ->
              t.running_count <- t.running_count - 1;
              settle t n outcome;
              Condition.broadcast t.cond);
          flush_fired t;
          loop ()
    in
    loop ()
  in
  let workers =
    Mutex.protect t.mutex (fun () ->
        max 1 (min t.ctx.Context.jobs t.pending))
  in
  let domains = Array.init workers (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains

let drain t =
  if t.resident <> None then
    invalid_arg "Graph.drain: resident workers are running (await instead)";
  if Mutex.protect t.mutex (fun () -> t.pending > 0) then begin
    let progress = t.ctx.Context.progress in
    Progress.set_workers progress (max 1 t.ctx.Context.jobs);
    if t.ctx.Context.jobs <= 1 then drain_sequential t else drain_parallel t;
    Progress.finish progress;
    if Mutex.protect t.mutex (fun () -> t.pending > 0) then
      raise (Cycle (stall_keys t))
  end

(* --- resident workers (the daemon's drain) --- *)

(* Like one [drain_parallel] worker, but it does not exit when the heap
   runs dry: it waits for new declarations, until [stop_workers] sets the
   stop flag — and even then finishes everything already runnable, so a
   graceful shutdown drains in-flight and queued work. Declaration-time
   cycle rejection means pending-but-unreachable work cannot exist, so
   there is no stall detection here. *)
let resident_worker t () =
  let rec loop () =
    let action =
      Mutex.protect t.mutex (fun () ->
          let rec get () =
            match pop_ready t with
            | Some n -> `Run n
            | None ->
                if t.stop && t.running_count = 0 then `Stop
                else begin
                  Condition.wait t.cond t.mutex;
                  get ()
                end
          in
          get ())
    in
    match action with
    | `Stop -> ()
    | `Run n ->
        let outcome = execute_node t n in
        Mutex.protect t.mutex (fun () ->
            t.running_count <- t.running_count - 1;
            settle t n outcome;
            Condition.broadcast t.cond);
        flush_fired t;
        loop ()
  in
  loop ()

let start_workers t =
  match t.resident with
  | Some _ -> invalid_arg "Graph.start_workers: workers already running"
  | None ->
      let jobs = max 1 t.ctx.Context.jobs in
      t.stop <- false;
      Progress.set_workers t.ctx.Context.progress jobs;
      t.resident <-
        Some (Array.init jobs (fun _ -> Domain.spawn (resident_worker t)))

let stop_workers t =
  match t.resident with
  | None -> ()
  | Some domains ->
      Mutex.protect t.mutex (fun () ->
          t.stop <- true;
          Condition.broadcast t.cond);
      Array.iter Domain.join domains;
      t.resident <- None;
      Progress.finish t.ctx.Context.progress;
      flush_fired t

let await t (n : 'a node) : 'a =
  (match n.status with
  | Finished _ -> ()
  | Pending | Ready | Running ->
      if t.resident <> None then
        (* resident workers own the execution; just wait for the node *)
        Mutex.protect t.mutex (fun () ->
            let unfinished () =
              match n.status with
              | Finished _ -> false
              | Pending | Ready | Running -> true
            in
            while unfinished () do
              Condition.wait t.cond t.mutex
            done)
      else drain t);
  match n.status with
  | Finished (Ok v) -> Obj.obj v
  | Finished (Error message) ->
      raise (Context.Job_failed { key = n.key; label = n.label; message })
  | Pending | Ready | Running ->
      (* drain either finishes every node or raises *)
      assert false
