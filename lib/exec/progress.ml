type snapshot = {
  queued : int;
  running : int;
  completed : int;
  failed : int;
  timed_out : int;
  deduped : int;
  peak_in_flight : int;
  cache_hits : int;
  cache_misses : int;
  corrupt_evicted : int;
  nodes_evicted : int;
  workers : int;
  wall_total : float;
  job_wall_total : float;
  job_wall_max : float;
  groups : int;
  fork_join_estimate_s : float;
}

type t = {
  mutex : Mutex.t;
  live : bool;
  started_at : float;
  mutable queued : int;
  mutable running : int;
  mutable completed : int;
  mutable failed : int;
  mutable timed_out : int;
  mutable deduped : int;
  mutable peak_in_flight : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable corrupt_evicted : int;
  mutable nodes_evicted : int;
  mutable workers : int;
  mutable job_wall_total : float;
  mutable job_wall_max : float;
  group_wall_max : (string, float) Hashtbl.t;
  mutable painted : bool;  (** a live line is currently on screen *)
}

let make ~live =
  {
    mutex = Mutex.create ();
    live;
    started_at = Unix.gettimeofday ();
    queued = 0;
    running = 0;
    completed = 0;
    failed = 0;
    timed_out = 0;
    deduped = 0;
    peak_in_flight = 0;
    cache_hits = 0;
    cache_misses = 0;
    corrupt_evicted = 0;
    nodes_evicted = 0;
    workers = 1;
    job_wall_total = 0.0;
    job_wall_max = 0.0;
    group_wall_max = Hashtbl.create 16;
    painted = false;
  }

let create ?live () =
  let live =
    match live with Some l -> l | None -> Unix.isatty Unix.stderr
  in
  make ~live

let silent () = make ~live:false

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> f ())

let unsafe_render_line t =
  let finished = t.completed + t.failed + t.timed_out in
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "jobs %d/%d" finished t.queued);
  if t.running > 0 then
    Buffer.add_string b (Printf.sprintf " (%d running)" t.running);
  if t.failed > 0 then Buffer.add_string b (Printf.sprintf " %d failed" t.failed);
  if t.timed_out > 0 then
    Buffer.add_string b (Printf.sprintf " %d timed out" t.timed_out);
  if t.cache_hits + t.cache_misses > 0 then
    Buffer.add_string b
      (Printf.sprintf " | cache %d hit %d miss" t.cache_hits t.cache_misses);
  if t.corrupt_evicted > 0 then
    Buffer.add_string b (Printf.sprintf " (%d evicted)" t.corrupt_evicted);
  Buffer.add_string b
    (Printf.sprintf " | %.1fs" (Unix.gettimeofday () -. t.started_at));
  Buffer.contents b

let repaint t =
  if t.live then begin
    Printf.eprintf "\r\027[K%s%!" (unsafe_render_line t);
    t.painted <- true
  end

let record t f =
  locked t (fun () ->
      f t;
      repaint t)

let add_queued t n = record t (fun t -> t.queued <- t.queued + n)

let job_started t ~label:_ =
  record t (fun t ->
      t.running <- t.running + 1;
      if t.running > t.peak_in_flight then t.peak_in_flight <- t.running)

let job_deduped t = record t (fun t -> t.deduped <- t.deduped + 1)

(* The fork-join estimate: if each group had run as its own barriered
   batch on unboundedly many workers, the suite would cost the sum of
   each group's slowest job. The gap between that and [wall_total] at
   high [--jobs] is the win from removing inter-experiment barriers. *)
let group_wall t ~group ~wall =
  locked t (fun () ->
      match Hashtbl.find_opt t.group_wall_max group with
      | Some w when w >= wall -> ()
      | _ -> Hashtbl.replace t.group_wall_max group wall)

let settle t ~wall =
  t.running <- t.running - 1;
  t.job_wall_total <- t.job_wall_total +. wall;
  if wall > t.job_wall_max then t.job_wall_max <- wall

let job_done t ~wall =
  record t (fun t ->
      settle t ~wall;
      t.completed <- t.completed + 1)

let job_failed t ~wall =
  record t (fun t ->
      settle t ~wall;
      t.failed <- t.failed + 1)

let job_timed_out t ~wall =
  record t (fun t ->
      settle t ~wall;
      t.timed_out <- t.timed_out + 1)

let cache_hit t = record t (fun t -> t.cache_hits <- t.cache_hits + 1)
let cache_miss t = record t (fun t -> t.cache_misses <- t.cache_misses + 1)

let corrupt_evicted t =
  record t (fun t -> t.corrupt_evicted <- t.corrupt_evicted + 1)

let node_evicted t = record t (fun t -> t.nodes_evicted <- t.nodes_evicted + 1)

let set_workers t n = locked t (fun () -> t.workers <- max 1 n)

let finish t =
  locked t (fun () ->
      if t.painted then begin
        Printf.eprintf "\r\027[K%!";
        t.painted <- false
      end)

let snapshot t =
  locked t (fun () ->
      {
        queued = t.queued;
        running = t.running;
        completed = t.completed;
        failed = t.failed;
        timed_out = t.timed_out;
        deduped = t.deduped;
        peak_in_flight = t.peak_in_flight;
        cache_hits = t.cache_hits;
        cache_misses = t.cache_misses;
        corrupt_evicted = t.corrupt_evicted;
        nodes_evicted = t.nodes_evicted;
        workers = t.workers;
        wall_total = Unix.gettimeofday () -. t.started_at;
        job_wall_total = t.job_wall_total;
        job_wall_max = t.job_wall_max;
        groups = Hashtbl.length t.group_wall_max;
        fork_join_estimate_s =
          Hashtbl.fold (fun _ w acc -> acc +. w) t.group_wall_max 0.0;
      })

let render_line t = locked t (fun () -> unsafe_render_line t)

let json_summary ?(extra = []) t =
  let s = snapshot t in
  let mean_job =
    let n = s.completed + s.failed + s.timed_out in
    if n = 0 then 0.0 else s.job_wall_total /. float_of_int n
  in
  let utilization =
    let capacity = float_of_int s.workers *. s.wall_total in
    if capacity <= 0.0 then 0.0
    else Float.min 1.0 (s.job_wall_total /. capacity)
  in
  let extra_fields =
    String.concat ""
      (List.map (fun (name, json) -> Printf.sprintf ", \"%s\": %s" name json)
         extra)
  in
  Printf.sprintf
    "{\"jobs\": {\"queued\": %d, \"done\": %d, \"failed\": %d, \
     \"timed_out\": %d}, \"cache\": {\"hits\": %d, \"misses\": %d, \
     \"corrupt_evicted\": %d}, \"wall_s\": {\"total\": %.3f, \"mean_job\": \
     %.3f, \"max_job\": %.3f}, \"workers\": {\"count\": %d, \
     \"utilization\": %.3f}, \"graph\": {\"deduped\": %d, \
     \"peak_in_flight\": %d, \"nodes_evicted\": %d, \"groups\": %d, \
     \"fork_join_estimate_s\": %.3f}%s}"
    s.queued s.completed s.failed s.timed_out s.cache_hits s.cache_misses
    s.corrupt_evicted s.wall_total mean_job s.job_wall_max s.workers
    utilization s.deduped s.peak_in_flight s.nodes_evicted s.groups
    s.fork_join_estimate_s extra_fields
