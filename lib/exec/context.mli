(** The execution context the experiment layer threads through: how many
    worker domains, which result cache (if any), where telemetry goes, and
    the per-job watchdog budget.

    {!map} is the one orchestration entry point: it wraps every job with a
    {!Store} lookup (hit → the cached value, no recomputation; miss → run
    the job, then cache), submits the batch to the {!Pool} and returns the
    outcomes in submission order. {!map_exn} is the strict form the
    experiment layer uses — the first failed or timed-out job raises
    {!Job_failed} with its key and diagnostic, which the CLI turns into a
    one-line stderr message and a non-zero exit. *)

type t = {
  jobs : int;  (** worker domains; 1 = sequential, bit-identical *)
  store : Store.t option;  (** [None] disables caching *)
  progress : Progress.t;
  watchdog_s : float option;  (** per-job wall-clock budget *)
}

exception
  Job_failed of {
    key : string;
    label : string;
    message : string;  (** includes a ["timed out"] marker for watchdog kills *)
  }

val sequential : t
(** One worker, no store, silent progress, no watchdog — the drop-in
    replacement for the old sequential code paths. *)

val create :
  ?jobs:int ->
  ?store:Store.t ->
  ?progress:Progress.t ->
  ?watchdog_s:float ->
  unit ->
  t
(** Defaults: [jobs = 1], no store, silent progress, no watchdog. *)

val with_store : t -> 'a Job.spec -> 'a Job.spec
(** Wrap a job's [run] with the context's store lookup (hit → the cached
    value, miss → run then cache), recording hits/misses/evictions on the
    context's progress sink. The identity when the context has no store.
    {!map} applies this to every job; {!Graph} applies it to cacheable
    nodes only. *)

val map : t -> 'a Job.spec list -> 'a Job.outcome list

val map_exn : t -> 'a Job.spec list -> 'a list
(** All outcomes must be [Done]; raises {!Job_failed} on the first that is
    not. *)
