(** Shared execution-context flag vocabulary.

    Every executable that runs jobs — the cmdliner-based [vliw_vp] driver
    and the hand-rolled bench harness — accepts the same four flags with
    the same semantics, defined once here: [--jobs N], [--no-cache],
    [--cache-dir DIR] and [--telemetry FILE]. The cmdliner front end maps
    its parsed terms onto {!opts}; plain front ends call {!parse}
    directly.

    [--no-spec-cache] is parsed here for uniformity but applied by the
    caller (the spec-unit cache lives above this library): front ends must
    forward [opts.no_spec_cache] to [Vliw_vp.Spec_unit.set_enabled]. *)

type opts = {
  jobs : int;  (** worker domains; 1 = sequential *)
  no_cache : bool;  (** disable the on-disk result {!Store} *)
  no_spec_cache : bool;
      (** disable the in-memory per-block artifact (spec-unit) cache *)
  cache_dir : string;
  telemetry : string option;
      (** where to write the JSON telemetry summary; ["-"] = stderr *)
}

val default : opts
(** One worker, caching on in {!Store.default_dir}, no telemetry. *)

val usage : string
(** One-line description of the shared flags, for error messages. *)

val parse : string list -> (opts * string list, string) result
(** [parse args] consumes the shared flags anywhere in [args] and returns
    the remaining arguments in their original order — the caller decides
    whether leftovers are its own flags or an error. Fails with a message
    on a malformed or missing flag value. *)

val context : ?progress:Progress.t -> opts -> Context.t
(** Build the execution context the options describe. An unusable cache
    directory (uncreatable, not a directory, or read-only — probed with
    one temp-file write) downgrades to a storeless context with a single
    [stderr] warning instead of failing per job. *)

val emit_telemetry :
  ?extra:(string * string) list -> opts -> Context.t -> unit
(** Write the context's telemetry summary to the configured destination,
    if any. [extra] pairs are appended as top-level JSON fields (see
    {!Progress.json_summary}) — the front ends use this to attach the
    spec-unit stripe counters, which live in a library above this one. *)
