(* The work queue: indices into the spec array, guarded by a mutex and a
   condition. All work is enqueued before the workers start, so [closed]
   only exists to wake blocked workers at the end; still, the queue is
   written for the general submit-while-running case. *)
module Wq = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    items : int Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      items = Queue.create ();
      closed = false;
    }

  let push t i =
    Mutex.lock t.mutex;
    Queue.push i t.items;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex

  (* [None] once the queue is closed and drained. *)
  let pop t =
    Mutex.lock t.mutex;
    let rec wait () =
      match Queue.take_opt t.items with
      | Some i -> Some i
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.mutex;
            wait ()
          end
    in
    let r = wait () in
    Mutex.unlock t.mutex;
    r
end

let execute ?watchdog_s ~progress (spec : 'a Job.spec) : 'a Job.outcome =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) watchdog_s
  in
  let cancel = Cancel.create ?deadline () in
  let ctx = Job.ctx_of ~key:spec.key cancel in
  Progress.job_started progress ~label:spec.label;
  let t0 = Unix.gettimeofday () in
  let outcome =
    match spec.run ctx with
    | v -> Job.Done v
    | exception Cancel.Cancelled reason ->
        if Cancel.timed_out cancel then Job.Timed_out reason
        else Job.Failed reason
    | exception exn -> Job.Failed (Printexc.to_string exn)
  in
  let wall = Unix.gettimeofday () -. t0 in
  (match outcome with
  | Job.Done _ -> Progress.job_done progress ~wall
  | Job.Failed _ -> Progress.job_failed progress ~wall
  | Job.Timed_out _ -> Progress.job_timed_out progress ~wall);
  outcome

let run ?watchdog_s ?progress ~jobs specs =
  let progress =
    match progress with Some p -> p | None -> Progress.silent ()
  in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  Progress.add_queued progress n;
  let results = Array.make n None in
  let exec i = results.(i) <- Some (execute ?watchdog_s ~progress specs.(i)) in
  let workers = max 1 (min jobs n) in
  Progress.set_workers progress workers;
  if workers <= 1 then
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    let q = Wq.create () in
    for i = 0 to n - 1 do
      Wq.push q i
    done;
    Wq.close q;
    let worker () =
      let rec loop () =
        match Wq.pop q with
        | Some i ->
            exec i;
            loop ()
        | None -> ()
      in
      loop ()
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains
  end;
  Array.to_list
    (Array.map
       (function
         | Some o -> o
         | None -> Job.Failed "internal error: job never executed")
       results)
