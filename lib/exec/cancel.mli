(** Cooperative cancellation tokens.

    A token is handed to every job the {!Pool} runs. Long-running jobs are
    expected to call {!check} (or poll {!should_stop}) at convenient points
    — once per simulated block, per sweep setting, per Monte-Carlo draw.
    When the pool's watchdog deadline has passed, or the token has been
    cancelled explicitly, {!check} raises {!Cancelled} and the pool turns
    the job into a reported [Timed_out]/[Failed] outcome instead of letting
    it run away.

    Tokens are safe to share across domains: the cancellation flag is an
    [Atomic.t] and the deadline is immutable. *)

type t

exception Cancelled of string
(** Raised by {!check}. The string is the cancellation reason (for a
    watchdog expiry, a description of the exceeded budget). *)

val create : ?deadline:float -> unit -> t
(** A fresh token. [deadline] is an absolute [Unix.gettimeofday] instant
    after which the token reports timeout; omitted = no deadline. *)

val none : t
(** A shared token that never cancels — for direct, unmonitored calls. *)

val cancel : t -> reason:string -> unit
(** Request cancellation. Idempotent; the first reason wins. *)

val timed_out : t -> bool
(** The deadline (if any) has passed. *)

val cancelled : t -> bool
(** {!cancel} has been called (independently of the deadline). *)

val should_stop : t -> bool
(** [cancelled t || timed_out t] — the polling form for code that prefers
    to unwind manually rather than via the {!Cancelled} exception. *)

val check : t -> unit
(** Raise {!Cancelled} if the job should stop, otherwise return unit. *)

val reason : t -> string option
(** The explicit cancellation reason, if any. *)
