(** Fixed-size [Domain]-based worker pool.

    [run ~jobs specs] executes every job and returns their outcomes in
    submission order. With [jobs <= 1] (or a single job) everything runs
    sequentially in the calling domain, in list order — the bit-identical
    reference path. With [jobs > 1], [min jobs (length specs)] worker
    domains drain a mutex/condition work queue; job results land in a
    pre-sized slot array, so completion order never influences the returned
    order.

    Determinism: a job's {!Job.ctx} RNG is seeded from its key, so a job
    draws the same random stream whichever worker runs it and wherever it
    sat in the queue.

    Watchdog: with [watchdog_s], each job gets a cancellation deadline that
    many seconds after it starts. A job that honours its token (calls
    {!Cancel.check} periodically) unwinds and is reported as
    [Timed_out] — the pool keeps draining the remaining jobs either way.

    Failure isolation: an exception inside one job becomes its [Failed]
    outcome; other jobs are unaffected. *)

val run :
  ?watchdog_s:float ->
  ?progress:Progress.t ->
  jobs:int ->
  'a Job.spec list ->
  'a Job.outcome list

val execute :
  ?watchdog_s:float -> progress:Progress.t -> 'a Job.spec -> 'a Job.outcome
(** Run one job in the calling domain with the pool's per-job machinery —
    key-derived RNG context, watchdog deadline, progress accounting,
    exception-to-outcome conversion. This is the single-job primitive
    {!run} loops over; {!Graph} drives it directly so a DAG scheduler and
    a flat batch execute jobs identically. *)
