type opts = {
  jobs : int;
  no_cache : bool;
  cache_dir : string;
  telemetry : string option;
}

let default =
  { jobs = 1; no_cache = false; cache_dir = Store.default_dir; telemetry = None }

let usage =
  "--jobs N (worker domains; output is byte-identical for any N), \
   --no-cache (disable the on-disk result cache), --cache-dir DIR, \
   --telemetry FILE (JSON job/cache/utilization summary; \"-\" = stderr)"

let parse args =
  let rec go opts leftover = function
    | [] -> Ok (opts, List.rev leftover)
    | ("--jobs" | "-j") :: rest -> (
        match rest with
        | n :: rest -> (
            match int_of_string_opt n with
            | Some jobs when jobs >= 1 -> go { opts with jobs } leftover rest
            | _ -> Error (Printf.sprintf "--jobs: not a positive integer: %s" n))
        | [] -> Error "--jobs requires a value")
    | "--no-cache" :: rest -> go { opts with no_cache = true } leftover rest
    | "--cache-dir" :: rest -> (
        match rest with
        | d :: rest -> go { opts with cache_dir = d } leftover rest
        | [] -> Error "--cache-dir requires a value")
    | "--telemetry" :: rest -> (
        match rest with
        | f :: rest -> go { opts with telemetry = Some f } leftover rest
        | [] -> Error "--telemetry requires a value")
    | arg :: rest -> go opts (arg :: leftover) rest
  in
  go default [] args

let context ?progress opts =
  let store =
    if opts.no_cache then None
    else Some (Store.create ~dir:opts.cache_dir ())
  in
  let progress =
    match progress with Some p -> p | None -> Progress.create ()
  in
  Context.create ~jobs:opts.jobs ?store ~progress ()

let emit_telemetry opts (exec : Context.t) =
  match opts.telemetry with
  | None -> ()
  | Some dest ->
      let json = Progress.json_summary exec.progress in
      if dest = "-" then Printf.eprintf "%s\n%!" json
      else
        let oc = open_out dest in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (json ^ "\n"))
