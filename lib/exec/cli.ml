type opts = {
  jobs : int;
  no_cache : bool;
  no_spec_cache : bool;
  cache_dir : string;
  telemetry : string option;
}

let default =
  {
    jobs = 1;
    no_cache = false;
    no_spec_cache = false;
    cache_dir = Store.default_dir;
    telemetry = None;
  }

let usage =
  "--jobs N (worker domains; output is byte-identical for any N), \
   --no-cache (disable the on-disk result cache), --no-spec-cache (disable \
   the in-memory per-block artifact cache), --cache-dir DIR, \
   --telemetry FILE (JSON job/cache/utilization summary; \"-\" = stderr)"

let parse args =
  let rec go opts leftover = function
    | [] -> Ok (opts, List.rev leftover)
    | ("--jobs" | "-j") :: rest -> (
        match rest with
        | n :: rest -> (
            match int_of_string_opt n with
            | Some jobs when jobs >= 1 -> go { opts with jobs } leftover rest
            | _ -> Error (Printf.sprintf "--jobs: not a positive integer: %s" n))
        | [] -> Error "--jobs requires a value")
    | "--no-cache" :: rest -> go { opts with no_cache = true } leftover rest
    | "--no-spec-cache" :: rest ->
        go { opts with no_spec_cache = true } leftover rest
    | "--cache-dir" :: rest -> (
        match rest with
        | d :: rest -> go { opts with cache_dir = d } leftover rest
        | [] -> Error "--cache-dir requires a value")
    | "--telemetry" :: rest -> (
        match rest with
        | f :: rest -> go { opts with telemetry = Some f } leftover rest
        | [] -> Error "--telemetry requires a value")
    | arg :: rest -> go opts (arg :: leftover) rest
  in
  go default [] args

let context ?progress opts =
  let store =
    if opts.no_cache then None
    else
      (* Detect an unusable cache directory once, here, rather than letting
         every job rediscover it: [Store.create] raises on a path that is
         not (or cannot become) a directory, and the write probe catches
         the read-only-directory case, where creation succeeds but every
         [Store.put] would fail one at a time. Either way the run proceeds
         without a cache after a single warning. *)
      match
        let s = Store.create ~dir:opts.cache_dir () in
        let probe =
          Filename.temp_file ~temp_dir:opts.cache_dir "vpexec" ".probe"
        in
        Sys.remove probe;
        s
      with
      | s -> Some s
      | exception Sys_error msg ->
          Printf.eprintf
            "warning: result cache disabled (cache dir %s unusable: %s)\n%!"
            opts.cache_dir msg;
          None
  in
  let progress =
    match progress with Some p -> p | None -> Progress.create ()
  in
  Context.create ~jobs:opts.jobs ?store ~progress ()

let emit_telemetry ?extra opts (exec : Context.t) =
  match opts.telemetry with
  | None -> ()
  | Some dest ->
      let json = Progress.json_summary ?extra exec.progress in
      if dest = "-" then Printf.eprintf "%s\n%!" json
      else
        let oc = open_out dest in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (json ^ "\n"))
