type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let create () = { words = Array.make 1 0 }

let ensure t i =
  let need = (i / bits_per_word) + 1 in
  if need > Array.length t.words then begin
    let words = Array.make (max need (2 * Array.length t.words)) 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    t.words <- words
  end

let set t i =
  assert (i >= 0);
  ensure t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  assert (i >= 0);
  let w = i / bits_per_word in
  if w < Array.length t.words then begin
    let b = i mod bits_per_word in
    t.words.(w) <- t.words.(w) land lnot (1 lsl b)
  end

let mem t i =
  let w = i / bits_per_word in
  if w >= Array.length t.words then false
  else t.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let of_list l =
  let t = create () in
  List.iter (set t) l;
  t

let copy t = { words = Array.copy t.words }
let to_words t = Array.copy t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let max_set_bit t =
  let rec scan_word w bit best =
    if w = 0 then best
    else
      let best = if w land 1 <> 0 then Some bit else best in
      scan_word (w lsr 1) (bit + 1) best
  in
  let best = ref None in
  Array.iteri
    (fun i w ->
      match scan_word w (i * bits_per_word) None with
      | Some b -> best := Some b
      | None -> ())
    t.words;
  !best

let intersects a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go i = i < n && (a.words.(i) land b.words.(i) <> 0 || go (i + 1)) in
  go 0

let union_into ~dst src =
  ensure dst ((Array.length src.words * bits_per_word) - 1);
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    t.words

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let equal a b =
  let la = Array.length a.words and lb = Array.length b.words in
  let rec go i =
    if i >= max la lb then true
    else
      let wa = if i < la then a.words.(i) else 0
      and wb = if i < lb then b.words.(i) else 0 in
      wa = wb && go (i + 1)
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))
