(** Growable bit sets over non-negative integer indices.

    Used to model the Synchronization register of the proposed architecture
    (one bit per predicted value) and wait-masks attached to VLIW
    instructions. The register in the paper is a fixed-width hardware
    structure; we let it grow so the compiler can allocate as many bits as a
    block needs and report the high-water mark. *)

type t

val create : unit -> t
(** Empty set. *)

val of_list : int list -> t
(** Set containing exactly the given indices. *)

val copy : t -> t

val to_words : t -> int array
(** The underlying machine words (bit [i] lives in word [i / int_size]), as
    a fresh array. Lets precompiled kernels lower a mask once into a flat
    word array and test intersection without touching the growable
    structure. *)

val set : t -> int -> unit
(** [set t i] adds index [i]. [i] must be non-negative. *)

val clear : t -> int -> unit
(** [clear t i] removes index [i]. No-op if absent. *)

val mem : t -> int -> bool

val is_empty : t -> bool

val cardinal : t -> int
(** Number of set bits. *)

val max_set_bit : t -> int option
(** Highest set index, if any — the hardware width the block would need. *)

val intersects : t -> t -> bool
(** [intersects a b] is [true] iff the sets share an index. This is the
    hardware issue test: a VLIW instruction with wait-mask [a] stalls while
    the Synchronization register [b] has any of those bits set. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate set indices in increasing order. *)

val elements : t -> int list
(** Set indices in increasing order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as "{1,5,6}". *)
