type load_profile = {
  op_id : int;
  stream : int;
  samples : int;
  stride_rate : float;
  fcm_rate : float;
  rate : float;
}

type block_profile = {
  block_index : int;
  executions : int;
  loads : load_profile list;
}

type t = { blocks : block_profile array }

(* One preallocated kernel pass per (domain, kinds): profiling replays
   every load of a run through the same states instead of building fresh
   ones — for the FCM kind, a whole prediction table — per load. The cache
   is domain-local, so concurrent pipeline jobs never share mutable
   kernel state. *)
let pass_cache :
    (Vp_predict.Predictor.kind list, Vp_predict.Kernel.pass) Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let pass_for kinds =
  let cache = Domain.DLS.get pass_cache in
  match Hashtbl.find_opt cache kinds with
  | Some p -> p
  | None ->
      let p = Vp_predict.Kernel.make_pass ~kinds in
      Hashtbl.add cache kinds p;
      p

let stream_rates workload ~stream ~samples ~kinds =
  (* The fast lane: one pass of the unboxed kernels over the stream's
     arena instead of a closure predictor per kind over a fresh list. *)
  let arena = Vp_workload.Workload.arena workload stream ~min_len:samples in
  let pass = pass_for kinds in
  Vp_predict.Kernel.run_pass pass arena ~off:0 ~len:samples;
  Array.init (Vp_predict.Kernel.pass_size pass)
    (Vp_predict.Kernel.pass_rate pass)

(* [stride_idx] / [fcm_idx] are the positions of the first [Stride] /
   first [Fcm _] kind in the predictor list (-1 when absent), computed
   once per profile instead of a list walk per load. *)
let first_index pred kinds =
  let rec go i = function
    | [] -> -1
    | k :: rest -> if pred k then i else go (i + 1) rest
  in
  go 0 kinds

let profile_load ~predictors ~stride_idx ~fcm_idx ~rates:rates_of
    ~max_samples ~executions (op : Vp_ir.Operation.t) =
  let stream =
    match op.stream with
    | Some s -> s
    | None -> invalid_arg "Value_profile: load without a stream"
  in
  let samples = max 1 (min executions max_samples) in
  let rates = rates_of ~stream ~samples ~kinds:predictors in
  let best = ref 0.0 in
  Array.iter (fun r -> if r > !best then best := r) rates;
  {
    op_id = op.id;
    stream;
    samples;
    stride_rate = (if stride_idx >= 0 then rates.(stride_idx) else 0.0);
    fcm_rate = (if fcm_idx >= 0 then rates.(fcm_idx) else 0.0);
    rate = !best;
  }

let paper_predictors ~fcm_order ~fcm_table_bits =
  [
    Vp_predict.Predictor.Stride;
    Vp_predict.Predictor.Fcm { order = fcm_order; table_bits = fcm_table_bits };
  ]

let profile ?program ?predictors ?rates ?(max_samples = 2000) ?(fcm_order = 2)
    ?(fcm_table_bits = 12) workload =
  let program =
    Option.value ~default:(Vp_workload.Workload.program workload) program
  in
  let predictors =
    Option.value
      ~default:(paper_predictors ~fcm_order ~fcm_table_bits)
      predictors
  in
  let rates =
    match rates with
    | Some f -> f
    | None ->
        fun ~stream ~samples ~kinds ->
          stream_rates workload ~stream ~samples ~kinds
  in
  let stride_idx =
    first_index (( = ) Vp_predict.Predictor.Stride) predictors
  in
  let fcm_idx =
    first_index
      (function Vp_predict.Predictor.Fcm _ -> true | _ -> false)
      predictors
  in
  let blocks =
    Array.mapi
      (fun i (wb : Vp_ir.Program.weighted_block) ->
        let loads =
          List.map
            (profile_load ~predictors ~stride_idx ~fcm_idx ~rates
               ~max_samples ~executions:wb.count)
            (Vp_ir.Block.loads wb.block)
        in
        { block_index = i; executions = wb.count; loads })
      (Vp_ir.Program.blocks program)
  in
  { blocks }

let blocks t = Array.copy t.blocks

let block t i =
  if i < 0 || i >= Array.length t.blocks then
    invalid_arg "Value_profile.block: out of range";
  t.blocks.(i)

let rate t ~block:i ~op =
  if i < 0 || i >= Array.length t.blocks then None
  else
    List.find_map
      (fun lp -> if lp.op_id = op then Some lp.rate else None)
      t.blocks.(i).loads

let mean_rate t =
  let acc = Vp_util.Stats.Acc.create () in
  Array.iter
    (fun bp ->
      List.iter
        (fun lp ->
          Vp_util.Stats.Acc.add_weighted acc lp.rate
            (float_of_int bp.executions))
        bp.loads)
    t.blocks;
  Vp_util.Stats.Acc.mean acc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun bp ->
      List.iter
        (fun lp ->
          Format.fprintf ppf
            "block %d op %d (stream %d): stride %.3f fcm %.3f -> %.3f@ "
            bp.block_index lp.op_id lp.stream lp.stride_rate lp.fcm_rate
            lp.rate)
        bp.loads)
    t.blocks;
  Format.fprintf ppf "@]"
