type load_profile = {
  op_id : int;
  stream : int;
  samples : int;
  stride_rate : float;
  fcm_rate : float;
  rate : float;
}

type block_profile = {
  block_index : int;
  executions : int;
  loads : load_profile list;
}

type t = { blocks : block_profile array }

let stream_rates workload ~stream ~samples ~kinds =
  (* The fast lane: one pass of the unboxed kernels over the stream's
     arena instead of a closure predictor per kind over a fresh list. *)
  let arena = Vp_workload.Workload.arena workload stream ~min_len:samples in
  Vp_predict.Kernel.accuracies ~kinds arena ~off:0 ~len:samples

let profile_load ~predictors ~rates:rates_of ~max_samples ~executions
    (op : Vp_ir.Operation.t) =
  let stream =
    match op.stream with
    | Some s -> s
    | None -> invalid_arg "Value_profile: load without a stream"
  in
  let samples = max 1 (min executions max_samples) in
  let rates =
    Array.to_list (rates_of ~stream ~samples ~kinds:predictors)
  in
  (* The (kind, rate) pairing is built once; the per-field lookups below
     walk it instead of re-walking the two lists per queried kind. *)
  let by_kind = List.map2 (fun k r -> (k, r)) predictors rates in
  let rate_of kind =
    Option.value ~default:0.0 (List.assoc_opt kind by_kind)
  in
  {
    op_id = op.id;
    stream;
    samples;
    stride_rate = rate_of Vp_predict.Predictor.Stride;
    fcm_rate =
      (match
         List.find_opt
           (function Vp_predict.Predictor.Fcm _ -> true | _ -> false)
           predictors
       with
      | Some k -> rate_of k
      | None -> 0.0);
    rate = List.fold_left Float.max 0.0 rates;
  }

let paper_predictors ~fcm_order ~fcm_table_bits =
  [
    Vp_predict.Predictor.Stride;
    Vp_predict.Predictor.Fcm { order = fcm_order; table_bits = fcm_table_bits };
  ]

let profile ?program ?predictors ?rates ?(max_samples = 2000) ?(fcm_order = 2)
    ?(fcm_table_bits = 12) workload =
  let program =
    Option.value ~default:(Vp_workload.Workload.program workload) program
  in
  let predictors =
    Option.value
      ~default:(paper_predictors ~fcm_order ~fcm_table_bits)
      predictors
  in
  let rates =
    match rates with
    | Some f -> f
    | None ->
        fun ~stream ~samples ~kinds ->
          stream_rates workload ~stream ~samples ~kinds
  in
  let blocks =
    Array.mapi
      (fun i (wb : Vp_ir.Program.weighted_block) ->
        let loads =
          List.map
            (profile_load ~predictors ~rates ~max_samples
               ~executions:wb.count)
            (Vp_ir.Block.loads wb.block)
        in
        { block_index = i; executions = wb.count; loads })
      (Vp_ir.Program.blocks program)
  in
  { blocks }

let blocks t = Array.copy t.blocks

let block t i =
  if i < 0 || i >= Array.length t.blocks then
    invalid_arg "Value_profile.block: out of range";
  t.blocks.(i)

let rate t ~block:i ~op =
  if i < 0 || i >= Array.length t.blocks then None
  else
    List.find_map
      (fun lp -> if lp.op_id = op then Some lp.rate else None)
      t.blocks.(i).loads

let mean_rate t =
  let acc = Vp_util.Stats.Acc.create () in
  Array.iter
    (fun bp ->
      List.iter
        (fun lp ->
          Vp_util.Stats.Acc.add_weighted acc lp.rate
            (float_of_int bp.executions))
        bp.loads)
    t.blocks;
  Vp_util.Stats.Acc.mean acc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun bp ->
      List.iter
        (fun lp ->
          Format.fprintf ppf
            "block %d op %d (stream %d): stride %.3f fcm %.3f -> %.3f@ "
            bp.block_index lp.op_id lp.stream lp.stride_rate lp.fcm_rate
            lp.rate)
        bp.loads)
    t.blocks;
  Format.fprintf ppf "@]"
