(** Value profiling of workloads.

    Reproduces the paper's profiling step: "These blocks were initially
    value profiled, based on stride and FCM prediction. The final value
    prediction rate for each operation, executed in the simulation runs,
    was chosen to be the higher value out of these two prediction rates."

    Each static load executes once per dynamic execution of its block, so
    its profiled value sequence is its stream replayed for the block's
    execution count (capped at [max_samples] for tractability — the rate
    converges long before that). *)

type load_profile = {
  op_id : int;  (** id of the load within its block *)
  stream : int;  (** value-stream id *)
  samples : int;  (** number of profiled dynamic executions *)
  stride_rate : float;  (** stride-predictor accuracy over the samples *)
  fcm_rate : float;  (** FCM accuracy over the samples *)
  rate : float;  (** max of the two — the load's value prediction rate *)
}

type block_profile = {
  block_index : int;
  executions : int;  (** profiled execution count of the block *)
  loads : load_profile list;  (** one entry per load, program order *)
}

type t

val profile :
  ?program:Vp_ir.Program.t ->
  ?predictors:Vp_predict.Predictor.kind list ->
  ?rates:
    (stream:int ->
    samples:int ->
    kinds:Vp_predict.Predictor.kind list ->
    float array) ->
  ?max_samples:int ->
  ?fcm_order:int ->
  ?fcm_table_bits:int ->
  Vp_workload.Workload.t ->
  t
(** Defaults: at most 2000 samples per load, the paper's predictor pair
    (stride + order-2 FCM with a 4096-entry table), rate = max over the
    pair. [predictors] substitutes any predictor set (the rate is the max
    over the set; [stride_rate]/[fcm_rate] report 0 for absent kinds) —
    used by the predictor-sensitivity ablation. [program] overrides the
    workload's own program — used by the region extension, whose
    superblocks reference the same value streams through different
    blocks. [rates] overrides the per-stream accuracy computation (it must
    return one accuracy per kind, in [kinds] order) — used by the pipeline
    to route it through the {!Spec_unit} memo. *)

val stream_rates :
  Vp_workload.Workload.t ->
  stream:int ->
  samples:int ->
  kinds:Vp_predict.Predictor.kind list ->
  float array
(** Per-kind prediction accuracy of stream [stream]'s first [samples]
    values, computed in a single unboxed-kernel pass over the workload's
    stream arena. Equal to [Predictor.accuracy] of each instantiated kind
    over [Value_stream.take] of the same prefix. *)

val blocks : t -> block_profile array

val block : t -> int -> block_profile

val rate : t -> block:int -> op:int -> float option
(** Prediction rate of the load [op] in [block]; [None] if that operation is
    not a profiled load. *)

val mean_rate : t -> float
(** Mean prediction rate over all loads, weighted by block execution count —
    a summary statistic for reports. *)

val pp : Format.formatter -> t -> unit
