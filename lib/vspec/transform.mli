(** The value-speculation transform — the compiler half of the paper.

    Given a basic block, a machine description and the profiled prediction
    rate of each load, [apply]:

    + schedules the original block (the baseline);
    + selects the loads to predict: loads on the longest critical path whose
      profiled rate meets the policy threshold and that have at least one
      speculable dependent (Section 3's policy), capped by the policy's
      prediction budget and Synchronization-register width;
    + rewrites the block into the extended ISA: one [LdPred] per prediction
      (writing a fresh predicted-value register), the predicted load in
      check-prediction form, flow-dependents of predictions in speculative
      form (side-effecting operations — stores, branches — are never
      speculated and become non-speculative consumers that stall on
      Synchronization-register bits);
    + allocates Synchronization-register bits and the static wait masks of
      every VLIW instruction;
    + adds [Verify] edges so that a consumer's stall is always resolvable,
      and iteratively repairs the schedule until a static progress guarantee
      holds: when an instruction stalls on a bit, every check whose outcome
      the in-order Compensation Code Engine may need to reach that bit's
      producer has already issued. Without this, an in-order CCE can
      deadlock against a stalled VLIW engine; predictions whose checks
      cannot be ordered correctly are dropped.

    The transform never changes observable semantics: the speculative block
    executed on the dual-engine machine (any misprediction pattern) leaves
    the same final register/memory state as the original block executed
    sequentially — property-tested in [test/test_engine.ml]. *)

type outcome =
  | Speculated of Spec_block.t
  | Unchanged of string
      (** The block was left alone; the string says why (no loads above
          threshold, no speculable dependents, budget exhausted, ...). *)

val apply :
  ?policy:Policy.t ->
  ?baseline:Vp_sched.Schedule.t ->
  Vp_machine.Descr.t ->
  rate:(Vp_ir.Operation.t -> float option) ->
  Vp_ir.Block.t ->
  outcome
(** [rate op] is the profiled value-prediction rate of load [op] ([None] if
    unprofiled, which disqualifies it).

    [baseline] supplies a precomputed list schedule of [block] on the same
    machine (e.g. from the spec-unit cache) so the transform reuses its
    dependence graph and baseline schedule instead of rebuilding them; it
    must schedule a structurally-equal block or the outcome is undefined
    ([Invalid_argument] on a size mismatch). *)
