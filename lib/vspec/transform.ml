type outcome =
  | Speculated of Spec_block.t
  | Unchanged of string

(* Raised internally when a prediction turns out to be unschedulable (its
   check cannot be ordered before a stalling consumer); the offending load is
   dropped from the selection and the transform restarts. *)
exception Drop_prediction of int

let flow_preds graph i =
  List.filter
    (fun (e : Vp_ir.Depgraph.edge) -> e.kind = Flow)
    (Vp_ir.Depgraph.preds graph i)

let flow_succs graph i =
  List.filter
    (fun (e : Vp_ir.Depgraph.edge) -> e.kind = Flow)
    (Vp_ir.Depgraph.succs graph i)

(* A guarded operation may be speculated only when its destination has no
   earlier writer in the block: the engines capture the destination's old
   value at issue so recovery can *restore* it when the operation turns out
   predicated off, and a first-write destination's old value (a live-in) is
   always correct at capture time. *)
let speculable policy block (op : Vp_ir.Operation.t) =
  (not (Vp_ir.Opcode.has_side_effect op.opcode))
  && (op.guard = None
     ||
     match Vp_ir.Operation.writes op with
     | Some r -> Vp_ir.Block.last_writer block ~before:op.id r = None
     | None -> false)
  && policy.Policy.speculate_op op

(* Candidate selection: loads on the longest critical path whose profiled
   rate meets the threshold and that have speculable dependents. Selection
   iterates with the path: once a load is (virtually) predicted, its
   consumers no longer wait for it, the critical path moves, and newly
   exposed loads become candidates — this is how the paper's rule
   ("predicting loads on the longest critical path for each block")
   interacts with scheduling. The virtual prediction replaces the load by a
   dependence-free unit-latency producer, the selection-time approximation
   of its LdPred. *)
let select policy ~latency graph ~rate block =
  let priority = Vp_ir.Depgraph.priority graph in
  let restorable (op : Vp_ir.Operation.t) =
    op.guard = None
    ||
    match Vp_ir.Operation.writes op with
    | Some r -> Vp_ir.Block.last_writer block ~before:op.id r = None
    | None -> false
  in
  let qualifies (op : Vp_ir.Operation.t) =
    Vp_ir.Operation.is_load op && op.stream <> None && restorable op
    && (match rate op with
       | Some r -> r >= policy.Policy.threshold
       | None -> false)
    &&
    let dependents =
      List.filter
        (fun (e : Vp_ir.Depgraph.edge) ->
          speculable policy block (Vp_ir.Block.op block e.dst))
        (flow_succs graph op.id)
    in
    List.length dependents >= policy.Policy.min_dependents
  in
  let cap candidates =
    candidates
    |> List.sort (fun a b ->
           match compare priority.(b) priority.(a) with
           | 0 -> compare a b
           | c -> c)
    |> List.filteri (fun rank _ -> rank < policy.Policy.max_predictions)
    |> List.sort compare
  in
  let all_qualifying =
    Array.to_list (Vp_ir.Block.ops block)
    |> List.filter qualifies
    |> List.map (fun (op : Vp_ir.Operation.t) -> op.id)
  in
  if not policy.Policy.critical_path_only then cap all_qualifying
  else begin
    (* A register no operation writes: reading it creates no dependence. *)
    let unwritten_reg =
      1
      + Array.fold_left
          (fun acc (op : Vp_ir.Operation.t) ->
            List.fold_left max (max acc (Option.value ~default:0 op.dst)) op.srcs)
          0 (Vp_ir.Block.ops block)
    in
    let virtual_block chosen =
      Vp_ir.Block.map block (fun op ->
          if List.mem op.id chosen then
            Vp_ir.Operation.make
              ~dst:(Option.get (Vp_ir.Operation.writes op))
              ~srcs:[ unwritten_reg ] ~id:op.id Vp_ir.Opcode.Move
          else op)
    in
    let rec grow chosen =
      if List.length chosen >= policy.Policy.max_predictions then chosen
      else begin
        let g = Vp_ir.Depgraph.build ~latency (virtual_block chosen) in
        let path = Vp_ir.Depgraph.critical_path g in
        let fresh =
          List.filter
            (fun i ->
              (not (List.mem i chosen)) && List.mem i all_qualifying)
            path
        in
        match fresh with [] -> chosen | _ -> grow (chosen @ fresh)
      end
    in
    cap (grow [])
  end

(* One full transform attempt for a fixed selection. Raises
   [Drop_prediction] when a prediction proves unschedulable. *)
let build_spec policy descr orig_graph orig_sched ~rate block selection =
  let latency = Vp_machine.Descr.latency descr in
  let n = Vp_ir.Block.size block in
  let num_sel = List.length selection in
  let sel = Array.make n false in
  let k_of = Array.make n (-1) in
  List.iteri
    (fun k i ->
      sel.(i) <- true;
      k_of.(i) <- k)
    selection;
  (* Classify: which operations consume predicted values, and which of
     those may be speculated. The Synchronization register has
     [max_sync_bits] bits — one per LdPred plus one per speculative
     operation — so speculation stops (later dependents become
     non-speculative consumers) once the bit budget is exhausted. Program
     order allocates bits to the operations nearest the predicted loads,
     the ones on the shortened critical path. *)
  let spec_budget = policy.Policy.max_sync_bits - num_sel in
  if spec_budget < 1 then
    raise (Drop_prediction (List.nth selection (num_sel - 1)));
  (* Speculating an operation is only useful if prediction actually lets it
     issue earlier: compare its unconstrained earliest issue time with and
     without the selected loads' dependences (the loads virtually replaced
     by dependence-free unit-latency producers). Operations that would not
     move are left non-speculative — they cost compensation work and a
     Synchronization-register bit while buying nothing. *)
  let est_orig = Vp_ir.Depgraph.earliest orig_graph in
  let est_virtual =
    let unwritten_reg =
      1
      + Array.fold_left
          (fun acc (op : Vp_ir.Operation.t) ->
            List.fold_left max (max acc (Option.value ~default:0 op.dst)) op.srcs)
          0 (Vp_ir.Block.ops block)
    in
    let virtual_block =
      Vp_ir.Block.map block (fun op ->
          if sel.(op.id) then
            Vp_ir.Operation.make
              ~dst:(Option.get (Vp_ir.Operation.writes op))
              ~srcs:[ unwritten_reg ] ~id:op.id Vp_ir.Opcode.Move
          else op)
    in
    Vp_ir.Depgraph.earliest (Vp_ir.Depgraph.build ~latency virtual_block)
  in
  let speculated = Array.make n false in
  let from_pred = Array.make n false in
  let num_spec = ref 0 in
  for i = 0 to n - 1 do
    let op = Vp_ir.Block.op block i in
    let fp =
      List.exists
        (fun (e : Vp_ir.Depgraph.edge) ->
          sel.(e.src) || speculated.(e.src))
        (flow_preds orig_graph i)
    in
    from_pred.(i) <- fp;
    if
      fp && (not sel.(i)) && speculable policy block op
      && est_virtual.(i) < est_orig.(i)
      && !num_spec < spec_budget
    then begin
      speculated.(i) <- true;
      incr num_spec
    end
  done;
  (* A prediction all of whose dependents were pruned is pure overhead. *)
  List.iter
    (fun load ->
      let k = k_of.(load) in
      let feeds_speculation =
        List.exists
          (fun (e : Vp_ir.Depgraph.edge) -> speculated.(e.dst))
          (flow_succs orig_graph load)
        && k >= 0
      in
      if not feeds_speculation then raise (Drop_prediction load))
    selection;
  let bit_of = Array.make n (-1) in
  let next_bit = ref num_sel in
  for i = 0 to n - 1 do
    if speculated.(i) then begin
      bit_of.(i) <- !next_bit;
      incr next_bit
    end
  done;
  let sync_bits_used = !next_bit in
  (* Prediction indexes each speculated value depends on (original ids). *)
  let orig_pred_deps = Array.make n [] in
  for i = 0 to n - 1 do
    if speculated.(i) then
      orig_pred_deps.(i) <-
        List.fold_left
          (fun acc (e : Vp_ir.Depgraph.edge) ->
            if sel.(e.src) then k_of.(e.src) :: acc
            else if speculated.(e.src) then orig_pred_deps.(e.src) @ acc
            else acc)
          [] (flow_preds orig_graph i)
        |> List.sort_uniq compare
  done;
  (* Fresh predicted-value registers. *)
  let max_reg =
    Array.fold_left
      (fun acc (op : Vp_ir.Operation.t) ->
        List.fold_left max
          (max acc (Option.value ~default:0 op.dst))
          op.srcs)
      0 (Vp_ir.Block.ops block)
  in
  let pred_reg k = max_reg + 1 + k in
  let dest_reg i =
    match Vp_ir.Operation.writes (Vp_ir.Block.op block i) with
    | Some r -> r
    | None -> assert false (* selected ops are loads *)
  in
  (* Transformed operation list: LdPreds first, then the rewritten block. *)
  let new_id i = i + num_sel in
  let ldpreds =
    List.mapi
      (fun k i ->
        Vp_ir.Operation.with_form
          (Vp_ir.Operation.make ~dst:(pred_reg k) ~id:k Vp_ir.Opcode.Ld_pred)
          (Ldpred_of { sync_bit = k; checked_by = new_id i }))
      selection
  in
  let rewrite i (op : Vp_ir.Operation.t) =
    if sel.(i) then
      Vp_ir.Operation.with_form op
        (Check { pred_bit = k_of.(i); spec_bits = [] })
    else if speculated.(i) then begin
      (* Direct consumers of a predicted load read the predicted-value
         register instead of the load's destination. *)
      let renames =
        List.filter_map
          (fun (e : Vp_ir.Depgraph.edge) ->
            if sel.(e.src) then Some (dest_reg e.src, pred_reg k_of.(e.src))
            else None)
          (flow_preds orig_graph i)
      in
      let rename r =
        match List.assoc_opt r renames with Some r' -> r' | None -> r
      in
      let srcs = List.map rename op.srcs in
      let guard = Option.map (fun (p, pol) -> (rename p, pol)) op.guard in
      Vp_ir.Operation.with_form { op with srcs; guard }
        (Speculative { sync_bit = bit_of.(i) })
    end
    else if from_pred.(i) then
      Vp_ir.Operation.with_form op Non_speculative
    else op
  in
  let body = List.mapi rewrite (Array.to_list (Vp_ir.Block.ops block)) in
  let make_block body_ops =
    Vp_ir.Block.of_ops
      ~label:(Vp_ir.Block.label block ^ "+vp")
      (ldpreds @ body_ops)
  in
  let new_block = make_block body in
  let new_n = n + num_sel in
  (* Wait bits: a non-speculative consumer (including a check with predicted
     ancestry in its address) stalls on the bits of its speculative operand
     producers. *)
  let wait_bits = Array.make new_n [] in
  for i = 0 to n - 1 do
    if from_pred.(i) && not speculated.(i) then
      wait_bits.(new_id i) <-
        List.filter_map
          (fun (e : Vp_ir.Depgraph.edge) ->
            if speculated.(e.src) then Some bit_of.(e.src) else None)
          (flow_preds orig_graph i)
        |> List.sort_uniq compare
  done;
  (* Verify edges: a stalling consumer may issue only after the checks that
     resolve its producers' bits have completed. *)
  let check_new_id k = new_id (List.nth selection k) in
  let check_latency k =
    latency (Vp_ir.Block.op block (List.nth selection k))
  in
  let verify_edge k x =
    let src = check_new_id k in
    if src >= x then raise (Drop_prediction (List.nth selection k));
    { Vp_ir.Depgraph.src; dst = x; kind = Verify; delay = check_latency k }
  in
  let base_extra =
    List.concat_map
      (fun i ->
        if from_pred.(i) && not speculated.(i) then
          List.concat_map
            (fun (e : Vp_ir.Depgraph.edge) ->
              if speculated.(e.src) then
                List.map
                  (fun k -> verify_edge k (new_id i))
                  orig_pred_deps.(e.src)
              else [])
            (flow_preds orig_graph i)
        else [])
      (List.init n (fun i -> i))
  in
  (* Schedule with deadlock repair: when an instruction stalls, every check
     the in-order CCE may need in order to clear the awaited bits must have
     issued already. Repair by forcing the consumer after the offending
     check; if the check follows the consumer in program order the
     prediction is unschedulable and gets dropped. *)
  let spec_new_ids =
    List.init n (fun i -> i)
    |> List.filter (fun i -> speculated.(i))
    |> List.map new_id
  in
  let waiting_ops =
    List.init new_n (fun i -> i) |> List.filter (fun i -> wait_bits.(i) <> [])
  in
  let dedup edges =
    List.sort_uniq
      (fun (a : Vp_ir.Depgraph.edge) b ->
        compare (a.src, a.dst, a.kind) (b.src, b.dst, b.kind))
      edges
  in
  (* Transformed id of the speculative operation owning each sync bit. *)
  let producer_of_bit =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun s -> Hashtbl.replace tbl bit_of.(s - num_sel) s)
      spec_new_ids;
    fun b -> Hashtbl.find tbl b
  in
  let rec schedule_fixpoint extra iterations =
    if iterations > 32 then
      (* Cannot happen: each round adds at least one of finitely many
         edges. Guard anyway. *)
      raise (Drop_prediction (List.hd selection));
    let graph = Vp_ir.Depgraph.build ~extra ~latency new_block in
    let sched = Vp_sched.List_scheduler.schedule descr graph in
    let issue i = Vp_sched.Schedule.issue_cycle sched i in
    (* When instruction [x] stalls on a bit, the in-order CCE must be able
       to clear it: the bit's producer — and every CCB entry ahead of the
       producer (issued earlier, or in the same cycle with a lower id) —
       needs its predictions' checks to have completed by [x]'s issue. *)
    let ahead_of s' s_b =
      issue s' < issue s_b || (issue s' = issue s_b && s' < s_b)
    in
    let violations =
      List.concat_map
        (fun x ->
          let cx = issue x in
          let producers = List.map producer_of_bit wait_bits.(x) in
          let relevant =
            List.concat_map
              (fun s_b ->
                s_b :: List.filter (fun s' -> ahead_of s' s_b) spec_new_ids)
              producers
            |> List.sort_uniq compare
          in
          List.concat_map
            (fun s ->
              List.filter_map
                (fun k ->
                  let completion = issue (check_new_id k) + check_latency k in
                  if completion > cx then Some (verify_edge k x) else None)
                orig_pred_deps.(s - num_sel))
            relevant)
        waiting_ops
      |> dedup
    in
    if violations = [] then (extra, graph, sched)
    else schedule_fixpoint (dedup (violations @ extra)) (iterations + 1)
  in
  let extra, _graph, sched = schedule_fixpoint (dedup base_extra) 0 in
  (* Assign each speculative operation's bit to the check that completes
     last among the predictions it depends on — that check's success is the
     one that clears the bit (Section 2.1's conditional clearing). *)
  let completion i =
    Vp_sched.Schedule.issue_cycle sched i
    + latency (Vp_ir.Block.op new_block i)
  in
  let spec_bits_of_check = Array.make num_sel [] in
  for i = 0 to n - 1 do
    if speculated.(i) then begin
      let last_k =
        List.fold_left
          (fun best k ->
            let c = completion (check_new_id k) in
            match best with
            | Some (_, cb) when cb >= c -> best
            | _ -> Some (k, c))
          None orig_pred_deps.(i)
      in
      match last_k with
      | Some (k, _) ->
          spec_bits_of_check.(k) <- bit_of.(i) :: spec_bits_of_check.(k)
      | None -> assert false (* speculated ops have prediction deps *)
    end
  done;
  (* Final block with the checks' conditional-clear lists filled in. *)
  let final_body =
    List.mapi
      (fun i op ->
        if sel.(i) then
          Vp_ir.Operation.with_form op
            (Check
               {
                 pred_bit = k_of.(i);
                 spec_bits = List.sort compare spec_bits_of_check.(k_of.(i));
               })
        else op)
      body
  in
  let final_block = make_block final_body in
  let final_graph = Vp_ir.Depgraph.build ~extra ~latency final_block in
  let final_sched =
    Vp_sched.Schedule.make descr final_graph
      ~issue:
        (Array.init new_n (fun i -> Vp_sched.Schedule.issue_cycle sched i))
  in
  (* Per-operation metadata for the engines. *)
  let predicted =
    Array.of_list
      (List.mapi
         (fun k i ->
           {
             Spec_block.index = k;
             orig_load_id = i;
             check_id = new_id i;
             ldpred_id = k;
             dest_reg = dest_reg i;
             pred_reg = pred_reg k;
             sync_bit = k;
             rate =
               Option.value ~default:0.0 (rate (Vp_ir.Block.op block i));
             stream = (Vp_ir.Block.op block i).stream;
           })
         selection)
  in
  let pred_deps = Array.make new_n [] in
  List.iteri (fun k _ -> pred_deps.(k) <- [ k ]) selection;
  for i = 0 to n - 1 do
    if speculated.(i) then pred_deps.(new_id i) <- orig_pred_deps.(i)
  done;
  let operand_sources =
    (* over [reads] (sources plus guard): the CCE must also wait for a
       speculative guard producer to resolve before re-deciding execution *)
    Array.init new_n (fun i ->
        let op = Vp_ir.Block.op final_block i in
        List.map
          (fun r ->
            match Vp_ir.Block.last_writer final_block ~before:i r with
            | Some w when w < num_sel -> Spec_block.From_prediction w
            | Some w when speculated.(w - num_sel) -> Spec_block.From_spec w
            | Some _ | None -> Spec_block.Verified)
          (Vp_ir.Operation.reads op))
  in
  (* A CCE recomputation may write the register file when the write cannot
     clobber a later (program-order) write that has already committed. That
     holds when the speculative operation is the block's last writer of the
     register, or when some stalling consumer (non-speculative or check)
     reads the register with this operation as its last writer: the
     consumer's Synchronization-register wait forces every subsequent writer
     to commit after the CCE write. Conversely, when neither holds, nothing
     needs the corrected value in the register file and writing it back
     could clobber a later result. *)
  let cce_writeback =
    Array.init new_n (fun i ->
        i >= num_sel
        && speculated.(i - num_sel)
        &&
        match Vp_ir.Operation.writes (Vp_ir.Block.op final_block i) with
        | None -> false
        | Some r ->
            Vp_ir.Block.last_writer final_block ~before:new_n r = Some i
            || List.exists
                 (fun x ->
                   let op_x = Vp_ir.Block.op final_block x in
                   (match op_x.form with
                   | Non_speculative | Check _ -> true
                   | Normal | Ldpred_of _ | Speculative _ -> false)
                   && List.mem r op_x.srcs
                   && Vp_ir.Block.last_writer final_block ~before:x r = Some i)
                 (List.init (new_n - i - 1) (fun d -> i + 1 + d)))
  in
  let wait_masks =
    Array.map
      (fun ops ->
        let mask = Vp_util.Bitset.create () in
        List.iter
          (fun (op : Vp_ir.Operation.t) ->
            List.iter (Vp_util.Bitset.set mask) wait_bits.(op.id))
          ops;
        mask)
      (Vp_sched.Schedule.instructions final_sched)
  in
  {
    Spec_block.original_block = block;
    original_graph = orig_graph;
    original_schedule = orig_sched;
    block = final_block;
    graph = final_graph;
    schedule = final_sched;
    predicted;
    pred_deps;
    operand_sources;
    wait_bits;
    wait_masks;
    cce_writeback;
    sync_bits_used;
  }

let apply ?(policy = Policy.default) ?baseline descr ~rate block =
  let latency = Vp_machine.Descr.latency descr in
  let orig_graph, orig_sched =
    match baseline with
    | Some sched ->
        if Vp_ir.Block.size (Vp_sched.Schedule.block sched) <> Vp_ir.Block.size block
        then invalid_arg "Transform.apply: baseline schedules another block";
        (Vp_sched.Schedule.graph sched, sched)
    | None ->
        let graph = Vp_ir.Depgraph.build ~latency block in
        (graph, Vp_sched.List_scheduler.schedule descr graph)
  in
  let no_candidates_reason () =
    let loads = Vp_ir.Block.loads block in
    if loads = [] then "no loads"
    else if
      List.for_all
        (fun (op : Vp_ir.Operation.t) ->
          match rate op with
          | Some r -> r < policy.Policy.threshold
          | None -> true)
        loads
    then
      Printf.sprintf "no load above the %.2f profile threshold"
        policy.Policy.threshold
    else "no profitable predictions (off the critical path or no dependents)"
  in
  let rec attempt dropped selection =
    match selection with
    | [] ->
        Unchanged
          (if dropped then "every candidate prediction was unschedulable"
           else no_candidates_reason ())
    | _ -> (
        try
          Speculated
            (build_spec policy descr orig_graph orig_sched ~rate block
               selection)
        with Drop_prediction i ->
          attempt true (List.filter (fun j -> j <> i) selection))
  in
  attempt false (select policy ~latency orig_graph ~rate block)
