(* Non-blocking framed-connection plumbing, shared by the server's client
   connections and the supervisor's client connections and worker links:
   an incremental frame decoder on the read side, a queue of encoded
   frames with a partial-write offset on the write side. The owner runs
   the select loop and decides what a frame or a closed peer means; this
   module only moves bytes. *)

type t = {
  fd : Unix.file_descr;
  dec : Protocol.Decoder.t;
  outq : string Queue.t;  (* framed bytes; head may be partially written *)
  mutable out_off : int;
  mutable closed : bool;
}

let create ?max_frame fd =
  { fd; dec = Protocol.Decoder.create ?max_frame (); outq = Queue.create ();
    out_off = 0; closed = false }

let fd t = t.fd
let closed t = t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

let send t json =
  if not t.closed then
    Queue.add (Protocol.frame (Jsonx.to_string json)) t.outq

let pending_out t = not (Queue.is_empty t.outq)

(* Drain readable bytes, delivering each complete frame to [on_frame].
   [on_frame] may close the connection (e.g. a shutdown request); the
   loop stops as soon as it does. The caller owns the close on `Eof /
   `Frame_error / `Io_error — it may want to flush a diagnostic first. *)
let read_step t ~on_frame =
  let buf = Bytes.create 65536 in
  let rec go () =
    if t.closed then `Closed
    else
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 -> `Eof
      | n -> (
          Protocol.Decoder.feed t.dec buf n;
          let rec frames () =
            if t.closed then `Closed
            else
              match Protocol.Decoder.next t.dec with
              | Ok (Some payload) ->
                  on_frame payload;
                  frames ()
              | Ok None -> `More
              | Error msg -> `Frame_error msg
          in
          match frames () with
          | `More -> go ()
          | (`Closed | `Frame_error _) as r -> r)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Ok
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> `Io_error
  in
  go ()

(* Flush as much of the out-queue as the socket accepts. *)
let write_step t =
  let rec go () =
    if t.closed then `Ok
    else
      match Queue.peek_opt t.outq with
      | None -> `Ok
      | Some chunk -> (
          let len = String.length chunk - t.out_off in
          match Unix.write_substring t.fd chunk t.out_off len with
          | n ->
              if n = len then begin
                ignore (Queue.pop t.outq);
                t.out_off <- 0;
                go ()
              end
              else begin
                t.out_off <- t.out_off + n;
                `Ok
              end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              `Ok
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (_, _, _) -> `Io_error)
  in
  go ()
