(* The resident simulation daemon.

   One process, two kinds of threads:

   - the {e serve loop} (the caller's thread): a [Unix.select] loop over
     non-blocking sockets that accepts connections, decodes request
     frames, validates and admits them, declares their work as nodes on
     the one shared {!Vp_exec.Graph}, and streams response frames as
     results arrive;
   - the graph's {e resident workers} ([Graph.start_workers], one domain
     per [--jobs]): they execute ready nodes as they are declared.

   The two meet in [completions]: each admitted artifact subscribes with
   [Graph.on_complete], and the callback — running on whichever worker
   domain finished the node — pushes the rendered result onto the
   mutex-protected completion queue and pokes the self-pipe so the select
   loop wakes immediately. Nothing in the serve loop ever blocks on a
   simulation.

   Sharing is the whole point: every request's nodes are declared onto the
   same graph with the same content-addressed keys the CLI uses (see
   {!Spec}), so overlapping requests from any number of clients resolve to
   in-flight nodes (graph dedup), to already-finished nodes of an earlier
   request (the graph keeps results, bounded by the node-cache LRU), or to
   the on-disk store (warm cache) — the payload simulations run once.

   The same loop also runs as one {e shard} of the sharded daemon
   ({!run_worker}): a forked worker process serves exactly one connection
   — the socketpair to its {!Supervisor} — with admission and timeouts
   handled upstream. *)

module G = Vp_exec.Graph

type config = {
  socket_path : string;
  tcp_port : int option;  (** additional 127.0.0.1 TCP listener *)
  max_pending : int;  (** admitted-but-unfinished requests, server-wide *)
  client_quota : int;  (** admitted-but-unfinished requests per connection *)
  default_timeout_s : float;  (** per request; [0.] disables *)
  max_frame : int;
  stats_file : string option;  (** periodic telemetry snapshot target *)
  stats_every_s : float;
  node_cap : int option;  (** graph node-cache LRU bound; [None] = unbounded *)
}

let default_config ~socket () =
  {
    socket_path = socket;
    tcp_port = None;
    max_pending = 64;
    client_quota = 16;
    default_timeout_s = 300.0;
    max_frame = Protocol.default_max_frame;
    stats_file = None;
    stats_every_s = 10.0;
    node_cap = None;
  }

(* --- connections and requests ----------------------------------------- *)

type conn = {
  io : Frameio.t;
  cid : int;
  mutable outstanding : int;  (* admitted requests not yet settled *)
  mutable dropped : bool;
}

type req = {
  rid : string;
  rconn : conn;
  total : int;
  mutable done_count : int;
  mutable settled : bool;  (* done, errored, timed out or client gone *)
  cancel : Vp_exec.Cancel.t;
  rt0 : float;
}

type completion = {
  c_req : req;
  c_artifact : string;
  c_result : (string, string) result;
}

type t = {
  cfg : config;
  exec : Vp_exec.Context.t;
  graph : G.t;
  telemetry : Telemetry.t;
  (* worker-to-loop handoff *)
  cmutex : Mutex.t;
  mutable completions : completion list;  (* reversed *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* serve-loop state *)
  mutable conns : conn list;
  mutable live : req list;
  mutable outstanding : int;
  mutable shutting : bool;
  mutable next_cid : int;
  mutable last_stats : float;
}

let send _t conn json = if not conn.dropped then Frameio.send conn.io json

let wake t =
  (* a full pipe already guarantees a pending wakeup *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let push_completion t c =
  Mutex.protect t.cmutex (fun () -> t.completions <- c :: t.completions);
  wake t

let take_completions t =
  List.rev (Mutex.protect t.cmutex (fun () ->
      let cs = t.completions in
      t.completions <- [];
      cs))

let stats_json t =
  Telemetry.json t.telemetry
    ~pool:(Vp_exec.Progress.snapshot t.exec.Vp_exec.Context.progress)
    ~queue_depth:t.outstanding

let write_stats_file t =
  match t.cfg.stats_file with
  | None -> ()
  | Some path -> (
      try
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Jsonx.to_string (stats_json t));
            output_char oc '\n');
        Sys.rename tmp path
      with Sys_error _ -> ())

(* --- request handling -------------------------------------------------- *)

let settle_request t (r : req) =
  if not r.settled then begin
    r.settled <- true;
    r.rconn.outstanding <- max 0 (r.rconn.outstanding - 1);
    t.outstanding <- max 0 (t.outstanding - 1)
  end

let reject_submit t conn ~id (rej : Protocol.reject) =
  Telemetry.rejected t.telemetry ~cid:conn.cid ~code:rej.code;
  send t conn (Protocol.error ~id rej)

let handle_submit t conn (s : Protocol.submit) =
  if t.shutting then
    reject_submit t conn ~id:s.id
      (Protocol.reject "shutting_down" "server is draining for shutdown")
  else if t.outstanding >= t.cfg.max_pending then
    reject_submit t conn ~id:s.id
      (Protocol.reject "overloaded"
         "pending queue full (%d requests); retry later" t.cfg.max_pending)
  else if conn.outstanding >= t.cfg.client_quota then
    reject_submit t conn ~id:s.id
      (Protocol.reject "quota_exceeded"
         "client has %d requests outstanding (quota %d)" conn.outstanding
         t.cfg.client_quota)
  else
    match Spec.of_submit s with
    | Error rej -> reject_submit t conn ~id:s.id rej
    | Ok spec ->
        let timeout =
          match s.timeout_s with
          | Some ts when ts > 0.0 -> Some ts
          | Some _ -> None
          | None ->
              if t.cfg.default_timeout_s > 0.0 then
                Some t.cfg.default_timeout_s
              else None
        in
        let now = Unix.gettimeofday () in
        let cancel =
          Vp_exec.Cancel.create
            ?deadline:(Option.map (fun ts -> now +. ts) timeout)
            ()
        in
        let r =
          {
            rid = s.id;
            rconn = conn;
            total = List.length s.experiments;
            done_count = 0;
            settled = false;
            cancel;
            rt0 = now;
          }
        in
        conn.outstanding <- conn.outstanding + 1;
        t.outstanding <- t.outstanding + 1;
        t.live <- r :: t.live;
        Telemetry.accepted t.telemetry ~cid:conn.cid;
        send t conn
          (Protocol.accepted ~id:s.id ~artifacts:s.experiments
             ~queue_depth:t.outstanding);
        (* Declare every artifact before subscribing can settle the
           request: declaration is cheap (payloads run on the worker
           domains), and the callbacks only touch the completion queue. *)
        List.iter
          (fun artifact ->
            let node = Spec.declare_artifact t.graph spec artifact in
            G.on_complete t.graph node (fun result ->
                push_completion t
                  { c_req = r; c_artifact = artifact; c_result = result }))
          s.experiments

let handle_frame t conn payload =
  match Jsonx.parse payload with
  | Error msg ->
      send t conn
        (Protocol.error ~id:""
           (Protocol.reject "bad_request" "unparseable frame: %s" msg))
  | Ok json -> (
      Telemetry.received t.telemetry;
      match Protocol.request_of_json json with
      | Error (id, rej) -> reject_submit t conn ~id rej
      | Ok (Protocol.Ping id) -> send t conn (Protocol.event ~id ~event:"pong" [])
      | Ok (Protocol.Stats id) ->
          send t conn
            (Protocol.event ~id ~event:"stats" [ ("stats", stats_json t) ])
      | Ok (Protocol.Shutdown id) ->
          t.shutting <- true;
          send t conn (Protocol.event ~id ~event:"shutting_down" [])
      | Ok (Protocol.Submit s) -> handle_submit t conn s)

let time_out_request t (r : req) =
  Vp_exec.Cancel.cancel r.cancel ~reason:"request timeout";
  send t r.rconn
    (Protocol.error ~id:r.rid
       (Protocol.reject "timeout"
          "request exceeded its budget after %d/%d artifacts" r.done_count
          r.total));
  settle_request t r;
  Telemetry.timed_out t.telemetry ~cid:r.rconn.cid

let handle_completion t (c : completion) =
  let r = c.c_req in
  (* budget enforcement is by deadline, not by luck of scheduling: a
     result that arrives past the request's deadline is a timeout even if
     no tick has fired yet *)
  if (not r.settled) && Vp_exec.Cancel.should_stop r.cancel then
    time_out_request t r;
  if not r.settled then
    match c.c_result with
    | Ok data ->
        send t r.rconn (Protocol.result ~id:r.rid ~artifact:c.c_artifact ~data);
        r.done_count <- r.done_count + 1;
        if r.done_count = r.total then begin
          let wall = Unix.gettimeofday () -. r.rt0 in
          send t r.rconn (Protocol.done_ ~id:r.rid ~wall_s:wall);
          settle_request t r;
          Telemetry.completed t.telemetry ~cid:r.rconn.cid ~wall
        end
    | Error msg ->
        send t r.rconn
          (Protocol.error ~id:r.rid
             (Protocol.reject "job_failed" "%s (artifact %s)" msg c.c_artifact));
        settle_request t r;
        Telemetry.failed t.telemetry ~cid:r.rconn.cid

let check_timeouts t =
  List.iter
    (fun r ->
      if (not r.settled) && Vp_exec.Cancel.should_stop r.cancel then
        time_out_request t r)
    t.live;
  t.live <- List.filter (fun r -> not r.settled) t.live

(* --- socket plumbing --------------------------------------------------- *)

let drop_conn t conn =
  if not conn.dropped then begin
    conn.dropped <- true;
    Telemetry.client_disconnected t.telemetry ~cid:conn.cid;
    (* requests of a vanished client: stop tracking, nothing to send *)
    List.iter (fun r -> if r.rconn == conn then settle_request t r) t.live;
    t.live <- List.filter (fun r -> not r.settled) t.live;
    Frameio.close conn.io;
    t.conns <- List.filter (fun c -> not (c == conn)) t.conns
  end

let accept_loop t listener ~peer_name =
  let rec go () =
    match Unix.accept ~cloexec:true listener with
    | fd, addr ->
        Unix.set_nonblock fd;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        let peer =
          match addr with
          | Unix.ADDR_UNIX _ -> peer_name
          | Unix.ADDR_INET (host, port) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
        in
        let conn =
          {
            io = Frameio.create ~max_frame:t.cfg.max_frame fd;
            cid;
            outstanding = 0;
            dropped = false;
          }
        in
        Telemetry.client_connected t.telemetry ~cid ~peer;
        t.conns <- conn :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_conn t conn =
  match Frameio.read_step conn.io ~on_frame:(handle_frame t conn) with
  | `Ok | `Closed -> ()
  | `Eof | `Io_error -> drop_conn t conn
  | `Frame_error msg ->
      send t conn (Protocol.error ~id:"" (Protocol.reject "protocol" "%s" msg));
      (* flush the error best-effort, then drop *)
      ignore (Frameio.write_step conn.io);
      drop_conn t conn

let write_conn t conn =
  match Frameio.write_step conn.io with
  | `Ok -> ()
  | `Io_error -> drop_conn t conn

let unix_listener path =
  (if Sys.file_exists path then
     (* stale socket from a dead daemon is unlinked; a live one is an error *)
     let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe (Unix.ADDR_UNIX path) with
     | () ->
         Unix.close probe;
         failwith (Printf.sprintf "socket %s: a daemon is already listening" path)
     | exception Unix.Unix_error (_, _, _) ->
         Unix.close probe;
         (try Sys.remove path with Sys_error _ -> ()));
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let tcp_listener port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

(* --- shared scaffolding ------------------------------------------------ *)

let make ~exec cfg =
  let graph = G.create exec in
  G.set_node_cap graph cfg.node_cap;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    cfg;
    exec;
    graph;
    telemetry = Telemetry.create ();
    cmutex = Mutex.create ();
    completions = [];
    wake_r;
    wake_w;
    conns = [];
    live = [];
    outstanding = 0;
    shutting = false;
    next_cid = 1;
    last_stats = Unix.gettimeofday ();
  }

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let close_wake t =
  (try Unix.close t.wake_r with Unix.Unix_error (_, _, _) -> ());
  try Unix.close t.wake_w with Unix.Unix_error (_, _, _) -> ()

let maybe_write_stats t =
  match t.cfg.stats_file with
  | Some _ ->
      let now = Unix.gettimeofday () in
      if now -. t.last_stats >= t.cfg.stats_every_s then begin
        t.last_stats <- now;
        write_stats_file t
      end
  | None -> ()

(* --- main loop --------------------------------------------------------- *)

let interrupted = Atomic.make false

let run ?(on_ready = fun () -> ()) ~exec cfg =
  let t = make ~exec cfg in
  let unix_l = unix_listener cfg.socket_path in
  let tcp_l = Option.map tcp_listener cfg.tcp_port in
  let listeners = unix_l :: Option.to_list tcp_l in
  Atomic.set interrupted false;
  (* The handler also writes the self-pipe so a signal that lands just
     before an idle (infinite-timeout) select still wakes the loop. *)
  let on_signal _ =
    Atomic.set interrupted true;
    wake t
  in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  G.start_workers t.graph;
  on_ready ();
  let listeners_open = ref true in
  let close_listeners () =
    if !listeners_open then begin
      listeners_open := false;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        listeners
    end
  in
  let finished () =
    t.shutting && t.outstanding = 0
    && List.for_all (fun c -> not (Frameio.pending_out c.io)) t.conns
  in
  let rec loop () =
    if Atomic.get interrupted then t.shutting <- true;
    if t.shutting then close_listeners ();
    if not (finished ()) then begin
      let reads =
        (t.wake_r :: (if !listeners_open then listeners else []))
        @ List.map (fun c -> Frameio.fd c.io) t.conns
      in
      let writes =
        List.filter_map
          (fun c ->
            if Frameio.pending_out c.io then Some (Frameio.fd c.io) else None)
          t.conns
      in
      (* Only tick when something is time-driven: request deadlines or
         periodic stats snapshots (shutdown progress is event-driven but
         ticks too, cheaply, as a backstop). A fully idle daemon blocks
         until a socket or the self-pipe wakes it — zero allocation and
         zero CPU between requests, which also keeps a resident daemon
         from defeating heap stabilization (Gc.compact convergence) for
         anything else in the process, e.g. the bench harness. *)
      let timeout =
        if t.live = [] && (not t.shutting) && t.cfg.stats_file = None then
          -1.0
        else 0.2
      in
      let readable, writable, _ =
        match Unix.select reads writes [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_r readable then drain_wake t;
      if !listeners_open then
        List.iter
          (fun l ->
            if List.mem l readable then
              accept_loop t l
                ~peer_name:
                  (if Some l = tcp_l then "tcp" else cfg.socket_path))
          listeners;
      List.iter
        (fun c -> if List.mem (Frameio.fd c.io) readable then read_conn t c)
        t.conns;
      List.iter (handle_completion t) (take_completions t);
      check_timeouts t;
      List.iter
        (fun c ->
          if List.mem (Frameio.fd c.io) writable && Frameio.pending_out c.io
          then write_conn t c)
        t.conns;
      (* opportunistic flush: frames enqueued this iteration *)
      List.iter
        (fun c -> if Frameio.pending_out c.io then write_conn t c)
        t.conns;
      maybe_write_stats t;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      close_listeners ();
      G.stop_workers t.graph;
      write_stats_file t;
      List.iter (fun c -> drop_conn t c) t.conns;
      close_wake t;
      (try Sys.remove cfg.socket_path with Sys_error _ -> ());
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigpipe old_pipe)
    loop;
  stats_json t

(* --- shard worker loop ------------------------------------------------- *)

(* One shard of the sharded daemon: the same serve loop over exactly one
   connection — the socketpair to the supervisor — with no listeners and
   no signal handling (the forked child ignores SIGINT/SIGTERM; the
   supervisor owns the process group's lifecycle and tells us to drain
   with a [shutdown] frame, or vanishes, which reads as EOF). Admission
   and client-facing timeouts live in the supervisor; the worker's own
   quotas are effectively unbounded and deadlines arrive as explicit
   [timeout_s] on each forwarded sub-request. *)
let run_worker ?(on_ready = fun () -> ()) ~exec cfg fd =
  let cfg =
    {
      cfg with
      max_pending = max_int / 2;
      client_quota = max_int / 2;
      default_timeout_s = 0.0;
      stats_file = None;
    }
  in
  let t = make ~exec cfg in
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  Unix.set_nonblock fd;
  let conn =
    {
      io = Frameio.create ~max_frame:cfg.max_frame fd;
      cid = 0;
      outstanding = 0;
      dropped = false;
    }
  in
  Telemetry.client_connected t.telemetry ~cid:0 ~peer:"supervisor";
  t.conns <- [ conn ];
  G.start_workers t.graph;
  on_ready ();
  let finished () =
    conn.dropped
    || (t.shutting && t.outstanding = 0 && not (Frameio.pending_out conn.io))
  in
  let rec loop () =
    if not (finished ()) then begin
      let reads = [ t.wake_r; Frameio.fd conn.io ] in
      let writes =
        if Frameio.pending_out conn.io then [ Frameio.fd conn.io ] else []
      in
      let timeout = if t.live = [] && not t.shutting then -1.0 else 0.2 in
      let readable, writable, _ =
        match Unix.select reads writes [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_r readable then drain_wake t;
      if (not conn.dropped) && List.mem (Frameio.fd conn.io) readable then
        read_conn t conn;
      List.iter (handle_completion t) (take_completions t);
      check_timeouts t;
      if
        (not conn.dropped)
        && (List.mem (Frameio.fd conn.io) writable
           || Frameio.pending_out conn.io)
      then write_conn t conn;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      G.stop_workers t.graph;
      (* the workers may have settled more nodes while draining *)
      List.iter (handle_completion t) (take_completions t);
      if (not conn.dropped) && Frameio.pending_out conn.io then
        ignore (Frameio.write_step conn.io);
      drop_conn t conn;
      close_wake t)
    loop;
  stats_json t
