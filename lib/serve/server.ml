(* The resident simulation daemon.

   One process, two kinds of threads:

   - the {e serve loop} (the caller's thread): a [Unix.select] loop over
     non-blocking sockets that accepts connections, decodes request
     frames, validates and admits them, declares their work as nodes on
     the one shared {!Vp_exec.Graph}, and streams response frames as
     results arrive;
   - the graph's {e resident workers} ([Graph.start_workers], one domain
     per [--jobs]): they execute ready nodes as they are declared.

   The two meet in [completions]: each admitted artifact subscribes with
   [Graph.on_complete], and the callback — running on whichever worker
   domain finished the node — pushes the rendered result onto the
   mutex-protected completion queue and pokes the self-pipe so the select
   loop wakes immediately. Nothing in the serve loop ever blocks on a
   simulation.

   Sharing is the whole point: every request's nodes are declared onto the
   same graph with the same content-addressed keys the CLI uses, so
   overlapping requests from any number of clients resolve to in-flight
   nodes (graph dedup), to already-finished nodes of an earlier request
   (the graph keeps results), or to the on-disk store (warm cache) — the
   payload simulations run once. *)

module G = Vp_exec.Graph

type config = {
  socket_path : string;
  tcp_port : int option;  (** additional 127.0.0.1 TCP listener *)
  max_pending : int;  (** admitted-but-unfinished requests, server-wide *)
  client_quota : int;  (** admitted-but-unfinished requests per connection *)
  default_timeout_s : float;  (** per request; [0.] disables *)
  max_frame : int;
  stats_file : string option;  (** periodic telemetry snapshot target *)
  stats_every_s : float;
}

let default_config ~socket () =
  {
    socket_path = socket;
    tcp_port = None;
    max_pending = 64;
    client_quota = 16;
    default_timeout_s = 300.0;
    max_frame = Protocol.default_max_frame;
    stats_file = None;
    stats_every_s = 10.0;
  }

(* --- experiment declaration ------------------------------------------- *)

(* Mirror of the CLI's config construction (bin/vliw_vp.ml) — byte-identity
   of served results with direct runs depends on building the identical
   [Config.t], which also makes the job keys (and so dedup and the warm
   cache) line up. *)
let build_config ~width ~seed ~threshold =
  let base = Vliw_vp.Config.default in
  {
    base with
    Vliw_vp.Config.width;
    seed;
    policy = { base.policy with threshold };
  }

let resolve_models = function
  | [] -> Ok Vp_workload.Spec_model.all
  | names ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match Vp_workload.Spec_model.by_name n with
            | Some m -> go (m :: acc) rest
            | None -> Error n)
      in
      go [] names

let render_key ~artifact ~config ~models ~csv =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ("serve-render", artifact, Vliw_vp.Spec_unit.version, models, config,
           csv)
          [ Marshal.Closures ]))

let ablate_sweeps =
  [
    ("threshold", Vliw_vp.Experiments.threshold_sweep);
    ("predictions", Vliw_vp.Experiments.prediction_budget_sweep);
    ("ccb", Vliw_vp.Experiments.ccb_capacity_sweep);
    ("syncbits", Vliw_vp.Experiments.sync_width_sweep);
    ("ccewidth", Vliw_vp.Experiments.cce_width_sweep);
    ("predictors", Vliw_vp.Experiments.predictor_sweep);
    ("accounting", Vliw_vp.Experiments.accounting_sweep);
  ]

(* Declare the artifact's work on the shared graph and return one node
   whose value is the artifact's rendered bytes — exactly the bytes
   [vliw_vp all] prints for that artifact, trailing separator newline
   included, so a client can reassemble the byte-identical document. The
   render node is a [~cache:false] reducer like the experiments' own: its
   key dedups repeat submissions at the graph level (the graph keeps
   finished nodes, so a repeated artifact answers without touching the
   store), while the underlying simulation leaves dedup/cache exactly as
   they do for the CLI. *)
let declare_artifact g ~config ~models ~csv artifact :
    string G.node =
  let module E = Vliw_vp.Experiments in
  let module S = E.Suite in
  let format = if csv then `Csv else `Ascii in
  let key = render_key ~artifact ~config ~models ~csv in
  let render ?(deps = []) f =
    G.node g ~label:("render:" ^ artifact) ~group:"serve" ~cache:false ~key
      ~deps
      (fun _ctx -> f ())
  in
  let with_summaries f =
    let n = S.run_all g ~config models in
    render ~deps:[ G.pack n ] (fun () -> f (G.value n))
  in
  match artifact with
  | "table2" -> with_summaries (fun s -> E.render_table2 ~format s ^ "\n")
  | "table3" -> with_summaries (fun s -> E.render_table3 ~format s ^ "\n")
  | "fig8" -> with_summaries (fun s -> E.render_figure8 s ^ "\n")
  | "comparison" ->
      with_summaries (fun s -> E.render_comparison ~format s ^ "\n")
  | "table4" ->
      let n = S.table4 g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_table4 ~format (G.value n) ^ "\n")
  | "regions" ->
      let n = S.regions g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_regions ~format (G.value n) ^ "\n")
  | "overlap" ->
      let n = S.overlap_validation g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_overlap ~format (G.value n) ^ "\n")
  | "hyperblocks" ->
      let n = S.hyperblocks g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_hyperblocks ~format (G.value n) ^ "\n")
  | "hardware" ->
      let n = S.hardware_validation g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          Vliw_vp.Trace_sim.render (G.value n) ^ "\n")
  | "stability" ->
      let n = S.stability g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_stability ~format (G.value n) ^ "\n")
  | "recovery" ->
      let model = List.hd models in
      let n = S.recovery_sensitivity g ~config model in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_recovery_sensitivity ~format
            ~bench:model.Vp_workload.Spec_model.name (G.value n)
          ^ "\n")
  | "example" ->
      render (fun () -> Format.asprintf "%a@." Vliw_vp.Example.describe ())
  | _ -> (
      match
        if String.length artifact > 7 && String.sub artifact 0 7 = "ablate:"
        then
          List.assoc_opt
            (String.sub artifact 7 (String.length artifact - 7))
            ablate_sweeps
        else None
      with
      | None ->
          (* [Protocol.expand_experiments] validated the name; reaching
             here means the registry and this match diverged *)
          invalid_arg ("Vp_serve.Server: unmapped artifact " ^ artifact)
      | Some sweep ->
          let sweep_name =
            String.sub artifact 7 (String.length artifact - 7)
          in
          let nodes =
            List.map (fun m -> (m, S.ablate g ~config m sweep)) models
          in
          render
            ~deps:(List.map (fun (_, n) -> G.pack n) nodes)
            (fun () ->
              String.concat ""
                (List.map
                   (fun ((m : Vp_workload.Spec_model.t), n) ->
                     E.render_ablation
                       ~title:
                         (Printf.sprintf "%s: %s sweep"
                            m.Vp_workload.Spec_model.name sweep_name)
                       (G.value n)
                     ^ "\n")
                   nodes)))

(* --- connections and requests ----------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  dec : Protocol.Decoder.t;
  outq : string Queue.t;  (* framed bytes; head may be partially written *)
  mutable out_off : int;
  mutable outstanding : int;  (* admitted requests not yet settled *)
  mutable dropped : bool;
}

type req = {
  rid : string;
  rconn : conn;
  total : int;
  mutable done_count : int;
  mutable settled : bool;  (* done, errored, timed out or client gone *)
  cancel : Vp_exec.Cancel.t;
  rt0 : float;
}

type completion = {
  c_req : req;
  c_artifact : string;
  c_result : (string, string) result;
}

type t = {
  cfg : config;
  exec : Vp_exec.Context.t;
  graph : G.t;
  telemetry : Telemetry.t;
  (* worker-to-loop handoff *)
  cmutex : Mutex.t;
  mutable completions : completion list;  (* reversed *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* serve-loop state *)
  mutable conns : conn list;
  mutable live : req list;
  mutable outstanding : int;
  mutable shutting : bool;
  mutable next_cid : int;
  mutable last_stats : float;
}

let send _t conn json =
  if not conn.dropped then
    Queue.add (Protocol.frame (Jsonx.to_string json)) conn.outq

let wake t =
  (* a full pipe already guarantees a pending wakeup *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let push_completion t c =
  Mutex.protect t.cmutex (fun () -> t.completions <- c :: t.completions);
  wake t

let take_completions t =
  List.rev (Mutex.protect t.cmutex (fun () ->
      let cs = t.completions in
      t.completions <- [];
      cs))

let stats_json t =
  Telemetry.json t.telemetry
    ~pool:(Vp_exec.Progress.snapshot t.exec.Vp_exec.Context.progress)
    ~queue_depth:t.outstanding

let write_stats_file t =
  match t.cfg.stats_file with
  | None -> ()
  | Some path -> (
      try
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Jsonx.to_string (stats_json t));
            output_char oc '\n');
        Sys.rename tmp path
      with Sys_error _ -> ())

(* --- request handling -------------------------------------------------- *)

let settle_request t (r : req) =
  if not r.settled then begin
    r.settled <- true;
    r.rconn.outstanding <- max 0 (r.rconn.outstanding - 1);
    t.outstanding <- max 0 (t.outstanding - 1)
  end

let reject_submit t conn ~id (rej : Protocol.reject) =
  Telemetry.rejected t.telemetry ~cid:conn.cid ~code:rej.code;
  send t conn (Protocol.error ~id rej)

let handle_submit t conn (s : Protocol.submit) =
  if t.shutting then
    reject_submit t conn ~id:s.id
      (Protocol.reject "shutting_down" "server is draining for shutdown")
  else if t.outstanding >= t.cfg.max_pending then
    reject_submit t conn ~id:s.id
      (Protocol.reject "overloaded"
         "pending queue full (%d requests); retry later" t.cfg.max_pending)
  else if conn.outstanding >= t.cfg.client_quota then
    reject_submit t conn ~id:s.id
      (Protocol.reject "quota_exceeded"
         "client has %d requests outstanding (quota %d)" conn.outstanding
         t.cfg.client_quota)
  else
    match resolve_models s.benchmarks with
    | Error name ->
        reject_submit t conn ~id:s.id
          (Protocol.reject "unknown_benchmark" "unknown benchmark %S" name)
    | Ok models ->
        let config =
          build_config ~width:s.width ~seed:s.seed ~threshold:s.threshold
        in
        let timeout =
          match s.timeout_s with
          | Some ts when ts > 0.0 -> Some ts
          | Some _ -> None
          | None ->
              if t.cfg.default_timeout_s > 0.0 then
                Some t.cfg.default_timeout_s
              else None
        in
        let now = Unix.gettimeofday () in
        let cancel =
          Vp_exec.Cancel.create
            ?deadline:(Option.map (fun ts -> now +. ts) timeout)
            ()
        in
        let r =
          {
            rid = s.id;
            rconn = conn;
            total = List.length s.experiments;
            done_count = 0;
            settled = false;
            cancel;
            rt0 = now;
          }
        in
        conn.outstanding <- conn.outstanding + 1;
        t.outstanding <- t.outstanding + 1;
        t.live <- r :: t.live;
        Telemetry.accepted t.telemetry ~cid:conn.cid;
        send t conn
          (Protocol.accepted ~id:s.id ~artifacts:s.experiments
             ~queue_depth:t.outstanding);
        (* Declare every artifact before subscribing can settle the
           request: declaration is cheap (payloads run on the worker
           domains), and the callbacks only touch the completion queue. *)
        List.iter
          (fun artifact ->
            let node =
              declare_artifact t.graph ~config ~models ~csv:s.csv artifact
            in
            G.on_complete t.graph node (fun result ->
                push_completion t
                  { c_req = r; c_artifact = artifact; c_result = result }))
          s.experiments

let handle_frame t conn payload =
  match Jsonx.parse payload with
  | Error msg ->
      send t conn
        (Protocol.error ~id:""
           (Protocol.reject "bad_request" "unparseable frame: %s" msg))
  | Ok json -> (
      Telemetry.received t.telemetry;
      match Protocol.request_of_json json with
      | Error (id, rej) -> reject_submit t conn ~id rej
      | Ok (Protocol.Ping id) -> send t conn (Protocol.event ~id ~event:"pong" [])
      | Ok (Protocol.Stats id) ->
          send t conn
            (Protocol.event ~id ~event:"stats" [ ("stats", stats_json t) ])
      | Ok (Protocol.Shutdown id) ->
          t.shutting <- true;
          send t conn (Protocol.event ~id ~event:"shutting_down" [])
      | Ok (Protocol.Submit s) -> handle_submit t conn s)

let time_out_request t (r : req) =
  Vp_exec.Cancel.cancel r.cancel ~reason:"request timeout";
  send t r.rconn
    (Protocol.error ~id:r.rid
       (Protocol.reject "timeout"
          "request exceeded its budget after %d/%d artifacts" r.done_count
          r.total));
  settle_request t r;
  Telemetry.timed_out t.telemetry ~cid:r.rconn.cid

let handle_completion t (c : completion) =
  let r = c.c_req in
  (* budget enforcement is by deadline, not by luck of scheduling: a
     result that arrives past the request's deadline is a timeout even if
     no tick has fired yet *)
  if (not r.settled) && Vp_exec.Cancel.should_stop r.cancel then
    time_out_request t r;
  if not r.settled then
    match c.c_result with
    | Ok data ->
        send t r.rconn (Protocol.result ~id:r.rid ~artifact:c.c_artifact ~data);
        r.done_count <- r.done_count + 1;
        if r.done_count = r.total then begin
          let wall = Unix.gettimeofday () -. r.rt0 in
          send t r.rconn (Protocol.done_ ~id:r.rid ~wall_s:wall);
          settle_request t r;
          Telemetry.completed t.telemetry ~cid:r.rconn.cid ~wall
        end
    | Error msg ->
        send t r.rconn
          (Protocol.error ~id:r.rid
             (Protocol.reject "job_failed" "%s (artifact %s)" msg c.c_artifact));
        settle_request t r;
        Telemetry.failed t.telemetry ~cid:r.rconn.cid

let check_timeouts t =
  List.iter
    (fun r ->
      if (not r.settled) && Vp_exec.Cancel.should_stop r.cancel then
        time_out_request t r)
    t.live;
  t.live <- List.filter (fun r -> not r.settled) t.live

(* --- socket plumbing --------------------------------------------------- *)

let drop_conn t conn =
  if not conn.dropped then begin
    conn.dropped <- true;
    Telemetry.client_disconnected t.telemetry ~cid:conn.cid;
    (* requests of a vanished client: stop tracking, nothing to send *)
    List.iter (fun r -> if r.rconn == conn then settle_request t r) t.live;
    t.live <- List.filter (fun r -> not r.settled) t.live;
    (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
    t.conns <- List.filter (fun c -> not (c == conn)) t.conns
  end

let accept_loop t listener ~peer_name =
  let rec go () =
    match Unix.accept ~cloexec:true listener with
    | fd, addr ->
        Unix.set_nonblock fd;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        let peer =
          match addr with
          | Unix.ADDR_UNIX _ -> peer_name
          | Unix.ADDR_INET (host, port) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
        in
        let conn =
          {
            fd;
            cid;
            dec = Protocol.Decoder.create ~max_frame:t.cfg.max_frame ();
            outq = Queue.create ();
            out_off = 0;
            outstanding = 0;
            dropped = false;
          }
        in
        Telemetry.client_connected t.telemetry ~cid ~peer;
        t.conns <- conn :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_conn t conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> drop_conn t conn
    | n ->
        Protocol.Decoder.feed conn.dec buf n;
        let rec frames () =
          match Protocol.Decoder.next conn.dec with
          | Ok (Some payload) ->
              handle_frame t conn payload;
              frames ()
          | Ok None -> ()
          | Error msg ->
              send t conn
                (Protocol.error ~id:"" (Protocol.reject "protocol" "%s" msg));
              (* flush the error best-effort, then drop *)
              drop_conn t conn
        in
        frames ();
        if not conn.dropped then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> drop_conn t conn
  in
  go ()

let write_conn t conn =
  let rec go () =
    match Queue.peek_opt conn.outq with
    | None -> ()
    | Some chunk -> (
        let len = String.length chunk - conn.out_off in
        match Unix.write_substring conn.fd chunk conn.out_off len with
        | n ->
            if n = len then begin
              ignore (Queue.pop conn.outq);
              conn.out_off <- 0;
              go ()
            end
            else conn.out_off <- conn.out_off + n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (_, _, _) -> drop_conn t conn)
  in
  go ()

let unix_listener path =
  (if Sys.file_exists path then
     (* stale socket from a dead daemon is unlinked; a live one is an error *)
     let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe (Unix.ADDR_UNIX path) with
     | () ->
         Unix.close probe;
         failwith (Printf.sprintf "socket %s: a daemon is already listening" path)
     | exception Unix.Unix_error (_, _, _) ->
         Unix.close probe;
         (try Sys.remove path with Sys_error _ -> ()));
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let tcp_listener port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

(* --- main loop --------------------------------------------------------- *)

let interrupted = Atomic.make false

let run ?(on_ready = fun () -> ()) ~exec cfg =
  let graph = G.create exec in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      cfg;
      exec;
      graph;
      telemetry = Telemetry.create ();
      cmutex = Mutex.create ();
      completions = [];
      wake_r;
      wake_w;
      conns = [];
      live = [];
      outstanding = 0;
      shutting = false;
      next_cid = 1;
      last_stats = Unix.gettimeofday ();
    }
  in
  let unix_l = unix_listener cfg.socket_path in
  let tcp_l = Option.map tcp_listener cfg.tcp_port in
  let listeners = unix_l :: Option.to_list tcp_l in
  Atomic.set interrupted false;
  (* The handler also writes the self-pipe so a signal that lands just
     before an idle (infinite-timeout) select still wakes the loop. *)
  let on_signal _ =
    Atomic.set interrupted true;
    wake t
  in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  G.start_workers graph;
  on_ready ();
  let listeners_open = ref true in
  let close_listeners () =
    if !listeners_open then begin
      listeners_open := false;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        listeners
    end
  in
  let finished () =
    t.shutting && t.outstanding = 0
    && List.for_all (fun c -> Queue.is_empty c.outq) t.conns
  in
  let drain_wake () =
    let buf = Bytes.create 256 in
    let rec go () =
      match Unix.read t.wake_r buf 0 (Bytes.length buf) with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let rec loop () =
    if Atomic.get interrupted then t.shutting <- true;
    if t.shutting then close_listeners ();
    if not (finished ()) then begin
      let reads =
        (t.wake_r :: (if !listeners_open then listeners else []))
        @ List.map (fun c -> c.fd) t.conns
      in
      let writes =
        List.filter_map
          (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
          t.conns
      in
      (* Only tick when something is time-driven: request deadlines or
         periodic stats snapshots (shutdown progress is event-driven but
         ticks too, cheaply, as a backstop). A fully idle daemon blocks
         until a socket or the self-pipe wakes it — zero allocation and
         zero CPU between requests, which also keeps a resident daemon
         from defeating heap stabilization (Gc.compact convergence) for
         anything else in the process, e.g. the bench harness. *)
      let timeout =
        if t.live = [] && (not t.shutting) && t.cfg.stats_file = None then
          -1.0
        else 0.2
      in
      let readable, writable, _ =
        match Unix.select reads writes [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_r readable then drain_wake ();
      if !listeners_open then
        List.iter
          (fun l ->
            if List.mem l readable then
              accept_loop t l
                ~peer_name:
                  (if Some l = tcp_l then "tcp" else cfg.socket_path))
          listeners;
      List.iter
        (fun c -> if List.mem c.fd readable then read_conn t c)
        t.conns;
      List.iter (handle_completion t) (take_completions t);
      check_timeouts t;
      List.iter
        (fun c ->
          if List.mem c.fd writable && not (Queue.is_empty c.outq) then
            write_conn t c)
        t.conns;
      (* opportunistic flush: frames enqueued this iteration *)
      List.iter
        (fun c -> if not (Queue.is_empty c.outq) then write_conn t c)
        t.conns;
      (match t.cfg.stats_file with
      | Some _ ->
          let now = Unix.gettimeofday () in
          if now -. t.last_stats >= t.cfg.stats_every_s then begin
            t.last_stats <- now;
            write_stats_file t
          end
      | None -> ());
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      close_listeners ();
      G.stop_workers graph;
      write_stats_file t;
      List.iter (fun c -> drop_conn t c) t.conns;
      (try Unix.close wake_r with Unix.Unix_error (_, _, _) -> ());
      (try Unix.close wake_w with Unix.Unix_error (_, _, _) -> ());
      (try Sys.remove cfg.socket_path with Sys_error _ -> ());
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigpipe old_pipe)
    loop;
  stats_json t
