(** The sharded daemon behind [vliw_vp serve --workers N].

    The supervisor owns the listeners, the clients and the production
    envelope — admission quotas ([max_pending] server-wide,
    [client_quota] per connection), request deadlines and graceful drain
    — and routes the work to [N] forked shard processes, each running
    {!Server.run_worker}: a resident serve loop with its own
    {!Vp_exec.Graph} and worker domains, linked to the supervisor by a
    socketpair speaking the ordinary frame protocol. All shards share
    the content-addressed on-disk store.

    Routing is by artifact identity: an artifact's {!Spec.render_key}
    hashes to its shard ({!Spec.shard_of_key}), so equal work from any
    number of clients lands on the same shard and dedups inside its
    graph exactly as in the single-process daemon, and the mapping —
    a pure function of the key — survives shard re-forks. Response
    frames stream back through the supervisor with the client's request
    id; per-artifact framing, result bytes and reassembly order are
    identical to the unsharded path.

    A shard that exits or wedges (socketpair EOF, or >15 s of heartbeat
    silence) is SIGKILLed and reaped; requests with sub-work in flight
    on it get a structured [worker_lost] error frame; the slot is
    re-forked immediately and the daemon keeps serving everyone else.

    Fork discipline: [Unix.fork] refuses to run once any domain exists,
    so {!run} forks every shard before any domain is created and the
    supervisor never spawns domains itself — call it before creating
    any domain in the process. *)

val run :
  ?on_ready:(unit -> unit) ->
  make_exec:(unit -> Vp_exec.Context.t) ->
  workers:int ->
  Server.config ->
  Jsonx.t
(** Run the sharded daemon until shutdown; returns the final aggregated
    telemetry snapshot (supervisor request counters plus the shards'
    graph/cache sections summed, plus a [workers] section). [make_exec]
    is called once {e inside} each freshly forked shard to build its
    execution context — the contexts must all point at the same store
    for cross-shard warmth. [on_ready] fires once the listeners are
    bound and every shard is forked. Raises [Invalid_argument] when
    [workers < 1] (use {!Server.run} for the in-process daemon). *)
