(** Minimal JSON for the serve wire protocol.

    The project deliberately avoids new dependencies; this is the same
    hand-rolled-JSON stance as {!Vp_exec.Progress.json_summary}, with a
    parser added because the daemon must {e read} requests, not just emit
    telemetry. Standard JSON, with two simplifications that are harmless
    for this protocol: integers parse to [Int] (anything else to [Float]),
    and [\uXXXX] escapes decode without surrogate-pair recombination. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping — one frame
    payload is always newline-free apart from escaped [\n]s. *)

val parse : string -> (t, string) result
(** Whole-string parse; the error carries a byte offset. *)

(** {1 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
val get_string : t -> string option
val get_int : t -> int option

val get_float : t -> float option
(** Accepts [Int] too. *)

val get_bool : t -> bool option
val get_list : t -> t list option
val string_member : string -> t -> string option
val int_member : string -> t -> int option
val float_member : string -> t -> float option
val list_member : string -> t -> t list option
