(** Non-blocking framed-connection plumbing, shared by the server's and
    supervisor's client connections and the supervisor's worker links: an
    incremental {!Protocol.Decoder} on the read side, a queue of encoded
    frames with a partial-write offset on the write side. The owner runs
    the select loop and decides what a frame or a closed peer means; this
    module only moves bytes. *)

type t

val create : ?max_frame:int -> Unix.file_descr -> t
(** Wrap an already-nonblocking descriptor. *)

val fd : t -> Unix.file_descr
val closed : t -> bool

val close : t -> unit
(** Close the descriptor (once); subsequent sends and steps are no-ops. *)

val send : t -> Jsonx.t -> unit
(** Enqueue one frame for {!write_step}. No-op when closed. *)

val pending_out : t -> bool
(** Frames (or a partial frame) are waiting to be written. *)

val read_step :
  t ->
  on_frame:(string -> unit) ->
  [ `Ok | `Eof | `Closed | `Frame_error of string | `Io_error ]
(** Drain readable bytes, delivering each complete frame payload to
    [on_frame] (which may {!close} the connection — the loop stops and
    reports [`Closed]). [`Ok] means the socket would block; the caller
    owns the close on [`Eof] / [`Frame_error] / [`Io_error], e.g. to
    flush a diagnostic frame first. *)

val write_step : t -> [ `Ok | `Io_error ]
(** Flush as much of the out-queue as the socket accepts. *)
