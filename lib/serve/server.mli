(** The resident simulation daemon behind [vliw_vp serve].

    {!run} owns the calling thread: it binds the Unix (and optionally a
    loopback TCP) listener, spawns the shared graph's resident worker
    domains, and runs a [select] loop that accepts connections, decodes
    {!Protocol} frames, admits requests, declares their artifacts as
    content-addressed nodes on {e one} shared {!Vp_exec.Graph}, and
    streams results back as the nodes complete. Overlapping requests —
    from one client or many — resolve to in-flight nodes, to results the
    graph already holds, or to the warm on-disk store; each payload
    simulation runs once per process lifetime.

    Production envelope:
    - {e admission control}: at most [max_pending] admitted-but-unfinished
      requests server-wide and [client_quota] per connection; excess
      submits are rejected immediately with a structured [error] frame
      ([overloaded] / [quota_exceeded]) — the server never silently hangs
      a client;
    - {e timeouts}: every request carries a {!Vp_exec.Cancel} token with a
      deadline ([timeout_s] in the request, else [default_timeout_s]); on
      expiry the client gets an [error] frame with code [timeout] and the
      token is cancelled (running jobs unwind at their next cancellation
      check; finished shared nodes stay warm for future requests);
    - {e graceful shutdown}: a [shutdown] request, SIGINT or SIGTERM stop
      the listeners, reject new submits with [shutting_down], drain every
      admitted request to its [done]/[error] frame, flush the sockets,
      stop the workers and remove the socket file;
    - {e telemetry}: a [stats] request answers with the {!Telemetry}
      snapshot (request counters, latency percentiles, per-client
      counters, graph dedup and cache hit rate); [stats_file] additionally
      gets a JSON snapshot every [stats_every_s] seconds and once at
      shutdown. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** additional 127.0.0.1 TCP listener *)
  max_pending : int;  (** admitted-but-unfinished requests, server-wide *)
  client_quota : int;  (** admitted-but-unfinished requests per connection *)
  default_timeout_s : float;  (** per request; [0.] disables *)
  max_frame : int;
  stats_file : string option;  (** periodic telemetry snapshot target *)
  stats_every_s : float;
  node_cap : int option;
      (** graph node-cache LRU bound (see {!Vp_exec.Graph.set_node_cap});
          [None] = unbounded *)
}

val default_config : socket:string -> unit -> config
(** 64 pending, 16 per client, 300 s timeout, 4 MiB frames, no TCP, no
    stats file, unbounded node cache. *)

val run : ?on_ready:(unit -> unit) -> exec:Vp_exec.Context.t -> config -> Jsonx.t
(** Run the daemon until shutdown; returns the final telemetry snapshot.
    [on_ready] fires once the listeners are bound (used by tests and the
    in-process bench harness to know when to connect). The context's
    [jobs] sets the resident worker count; its [store] is the shared warm
    cache. *)

val unix_listener : string -> Unix.file_descr
(** Bind a non-blocking Unix listener at the path, unlinking a stale
    socket left by a dead daemon first (raises [Failure] if a live one
    answers). Shared with {!Supervisor}, which must bind before forking
    its shards. *)

val tcp_listener : int -> Unix.file_descr
(** Bind a non-blocking loopback TCP listener. *)

val run_worker :
  ?on_ready:(unit -> unit) ->
  exec:Vp_exec.Context.t ->
  config ->
  Unix.file_descr ->
  Jsonx.t
(** One shard of the sharded daemon (see {!Supervisor}): the same serve
    loop over exactly one connection — [fd], the socketpair to the
    supervisor — with no listeners, no signal handling and no admission
    limits of its own (quotas, client-facing timeouts and drain
    orchestration live upstream; deadlines arrive as explicit [timeout_s]
    on forwarded sub-requests). Runs until the supervisor sends
    [shutdown] and the backlog drains, or the socketpair hits EOF
    (supervisor gone). Returns the shard's final telemetry snapshot.
    Must be called in a freshly forked child {e before} any domain
    exists in it; it spawns the shard's own resident worker domains. *)
