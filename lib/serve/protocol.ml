(* Wire protocol: length-prefixed JSON frames. See DESIGN.md ("Serve wire
   protocol") for the full schema reference; this module is the one
   implementation both sides share. *)

(* --- framing --- *)

let default_max_frame = 4 * 1024 * 1024

let frame payload =
  Printf.sprintf "%d\n%s" (String.length payload) payload

let write_frame fd payload =
  let data = frame payload in
  let len = String.length data in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd data off (len - off) in
      go (off + n)
  in
  go 0

(* Blocking frame read (client side). [None] on clean EOF at a frame
   boundary. *)
let read_frame ?(max_frame = default_max_frame) fd =
  let byte = Bytes.create 1 in
  let rec read_len acc first =
    match Unix.read fd byte 0 1 with
    | 0 -> if first then None else failwith "serve: truncated frame header"
    | _ -> (
        match Bytes.get byte 0 with
        | '\n' -> Some acc
        | '0' .. '9' as c ->
            let acc = (acc * 10) + (Char.code c - Char.code '0') in
            if acc > max_frame then failwith "serve: frame too large"
            else read_len acc false
        | c -> failwith (Printf.sprintf "serve: bad frame header byte %C" c))
  in
  match read_len 0 true with
  | None -> None
  | Some len ->
      let buf = Bytes.create len in
      let rec fill off =
        if off < len then
          match Unix.read fd buf off (len - off) with
          | 0 -> failwith "serve: truncated frame payload"
          | n -> fill (off + n)
      in
      fill 0;
      Some (Bytes.to_string buf)

(* Incremental decoder (server side, non-blocking sockets). *)
module Decoder = struct
  type t = {
    max_frame : int;
    buf : Buffer.t;
    mutable expect : int option;  (* payload length once the header parsed *)
  }

  let create ?(max_frame = default_max_frame) () =
    { max_frame; buf = Buffer.create 1024; expect = None }

  let feed t bytes n = Buffer.add_subbytes t.buf bytes 0 n

  (* [next t] is [Ok (Some payload)] when a whole frame is buffered,
     [Ok None] when more bytes are needed, [Error msg] on a malformed
     header or an oversized frame (the connection should be dropped). *)
  let next t =
    let contents = Buffer.contents t.buf in
    let parse_header () =
      match String.index_opt contents '\n' with
      | None ->
          if String.length contents > 20 then
            Error "frame header too long (missing newline)"
          else Ok None
      | Some nl -> (
          let raw = String.sub contents 0 nl in
          match int_of_string_opt raw with
          | Some len when len >= 0 ->
              if len > t.max_frame then
                Error (Printf.sprintf "frame of %d bytes exceeds limit" len)
              else begin
                t.expect <- Some len;
                Buffer.clear t.buf;
                Buffer.add_string t.buf
                  (String.sub contents (nl + 1)
                     (String.length contents - nl - 1));
                Ok (Some ())
              end
          | _ -> Error (Printf.sprintf "bad frame length %S" raw))
    in
    let rec go () =
      match t.expect with
      | None -> (
          match parse_header () with
          | Error e -> Error e
          | Ok None -> Ok None
          | Ok (Some ()) -> go ())
      | Some len ->
          if Buffer.length t.buf < len then Ok None
          else begin
            let contents = Buffer.contents t.buf in
            let payload = String.sub contents 0 len in
            Buffer.clear t.buf;
            Buffer.add_string t.buf
              (String.sub contents len (String.length contents - len));
            t.expect <- None;
            Ok (Some payload)
          end
    in
    go ()
end

(* --- experiment registry --- *)

(* The names a submit request may ask for. "all" expands to the exact
   artifact sequence `vliw_vp all` prints, so a submit of ["all"] can be
   reassembled byte-identically to the direct CLI run. *)
let all_sequence =
  [ "table2"; "table3"; "table4"; "fig8"; "comparison"; "regions"; "overlap";
    "example" ]

let known_experiments =
  all_sequence
  @ [ "hyperblocks"; "hardware"; "stability"; "recovery"; "regions:frontier" ]
  @ List.map
      (fun s -> "ablate:" ^ s)
      [ "threshold"; "predictions"; "ccb"; "syncbits"; "ccewidth";
        "predictors"; "accounting" ]

(* [sweeps] are the request-declared custom sweep names: a submit carrying
   a ["sweeps"] spec may reference each as the experiment ["sweep:NAME"]. *)
let expand_experiments ?(sweeps = []) names =
  let is_sweep name =
    String.length name > 6
    && String.sub name 0 6 = "sweep:"
    && List.mem (String.sub name 6 (String.length name - 6)) sweeps
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "all" :: rest -> go (List.rev_append all_sequence acc) rest
    | name :: rest ->
        if List.mem name known_experiments || is_sweep name then
          go (name :: acc) rest
        else Error name
  in
  match names with [] -> go [] [ "all" ] | names -> go [] names

(* --- requests --- *)

type submit = {
  id : string;
  experiments : string list;  (* expanded, validated, request order *)
  benchmarks : string list;  (* validated names; [] = the full set *)
  width : int;
  seed : int;
  threshold : float;
  overrides : (string * Jsonx.t) list;
      (* machine-config overrides: the non-core keys of the request's
         "config" object, shape-checked here, semantically validated
         against the config schema by [Vp_serve.Spec] at admission *)
  sweeps : (string * (string * (string * Jsonx.t) list) list) list;
      (* custom sweeps: name -> (point label, point config overrides),
         referenced from [experiments] as "sweep:NAME" *)
  csv : bool;
  timeout_s : float option;  (* None = the server default *)
}

type request =
  | Submit of submit
  | Stats of string
  | Ping of string
  | Shutdown of string

(* Structured rejection: [code] is machine-readable (DESIGN.md lists the
   vocabulary), [message] human-readable. *)
type reject = { code : string; message : string }

let reject code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

(* The core keys of the "config" object; everything else is collected as a
   machine-config override and validated against the config schema at
   admission by [Vp_serve.Spec]. *)
let core_config_keys = [ "width"; "seed"; "threshold" ]

let config_overrides config =
  match config with
  | Jsonx.Obj fields ->
      List.filter (fun (k, _) -> not (List.mem k core_config_keys)) fields
  | _ -> []

(* Shape of the request-level "sweeps" spec:
     "sweeps": {"NAME": [{"label": "...", "config": {...}}, ...], ...}
   Names and per-sweep labels must be unique and point lists non-empty;
   the point configs' semantic validation happens at admission. *)
let parse_sweeps json =
  match Jsonx.member "sweeps" json with
  | None -> Ok []
  | Some (Jsonx.Obj entries) ->
      let parse_point name = function
        | Jsonx.Obj _ as p -> (
            match Jsonx.string_member "label" p with
            | None | Some "" ->
                Error
                  (reject "bad_sweep" "sweep %S: every point needs a \
                                       non-empty \"label\"" name)
            | Some label -> (
                match Jsonx.member "config" p with
                | None -> Ok (label, [])
                | Some (Jsonx.Obj fields) -> Ok (label, fields)
                | Some _ ->
                    Error
                      (reject "bad_sweep"
                         "sweep %S, point %S: \"config\" must be an object"
                         name label)))
        | _ -> Error (reject "bad_sweep" "sweep %S: points must be objects" name)
      in
      let parse_entry (name, points) =
        if name = "" then Error (reject "bad_sweep" "empty sweep name")
        else
          match points with
          | Jsonx.List [] ->
              Error (reject "bad_sweep" "sweep %S has no points" name)
          | Jsonx.List ps ->
              let rec go acc = function
                | [] -> Ok (name, List.rev acc)
                | p :: rest -> (
                    match parse_point name p with
                    | Error _ as e -> e
                    | Ok ((label, _) as point) ->
                        if List.mem_assoc label acc then
                          Error
                            (reject "bad_sweep" "sweep %S: duplicate label %S"
                               name label)
                        else go (point :: acc) rest)
              in
              go [] ps
          | _ ->
              Error
                (reject "bad_sweep" "sweep %S must be a list of points" name)
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | entry :: rest -> (
            match parse_entry entry with
            | Error _ as e -> e
            | Ok ((name, _) as sweep) ->
                if List.mem_assoc name acc then
                  Error (reject "bad_sweep" "duplicate sweep %S" name)
                else go (sweep :: acc) rest)
      in
      go [] entries
  | Some _ -> Error (reject "bad_sweep" "\"sweeps\" must be an object")

let request_of_json json =
  let id = Option.value ~default:"" (Jsonx.string_member "id" json) in
  match Jsonx.string_member "op" json with
  | None -> Error (id, reject "bad_request" "missing \"op\" field")
  | Some "stats" -> Ok (Stats id)
  | Some "ping" -> Ok (Ping id)
  | Some "shutdown" -> Ok (Shutdown id)
  | Some "submit" -> (
      let names =
        match Jsonx.list_member "experiments" json with
        | None -> Ok []
        | Some xs ->
            List.fold_left
              (fun acc x ->
                match (acc, Jsonx.get_string x) with
                | Ok acc, Some s -> Ok (s :: acc)
                | (Error _ as e), _ -> e
                | Ok _, None ->
                    Error
                      (reject "bad_request" "experiments must be strings"))
              (Ok []) xs
            |> Result.map List.rev
      in
      let benchmarks =
        match Jsonx.list_member "benchmarks" json with
        | None -> Ok []
        | Some xs ->
            List.fold_left
              (fun acc x ->
                match (acc, Jsonx.get_string x) with
                | Ok acc, Some s -> Ok (s :: acc)
                | (Error _ as e), _ -> e
                | Ok _, None ->
                    Error (reject "bad_request" "benchmarks must be strings"))
              (Ok []) xs
            |> Result.map List.rev
      in
      let sweeps = parse_sweeps json in
      match (names, benchmarks, sweeps) with
      | Error r, _, _ | _, Error r, _ | _, _, Error r -> Error (id, r)
      | Ok names, Ok benchmarks, Ok sweeps -> (
          match expand_experiments ~sweeps:(List.map fst sweeps) names with
          | Error name ->
              Error (id, reject "unknown_experiment" "unknown experiment %S" name)
          | Ok experiments ->
              let config = Option.value ~default:(Jsonx.Obj []) (Jsonx.member "config" json) in
              let width = Option.value ~default:4 (Jsonx.int_member "width" config) in
              let seed = Option.value ~default:42 (Jsonx.int_member "seed" config) in
              let threshold =
                Option.value ~default:0.65 (Jsonx.float_member "threshold" config)
              in
              let overrides = config_overrides config in
              let csv =
                match Jsonx.string_member "format" json with
                | Some "csv" -> true
                | _ -> false
              in
              let timeout_s = Jsonx.float_member "timeout_s" json in
              if width < 1 || width > 64 then
                Error (id, reject "bad_request" "width out of range: %d" width)
              else if not (threshold >= 0.0 && threshold <= 1.0) then
                Error
                  (id, reject "bad_request" "threshold out of range: %g" threshold)
              else
                Ok
                  (Submit
                     {
                       id;
                       experiments;
                       benchmarks;
                       width;
                       seed;
                       threshold;
                       overrides;
                       sweeps;
                       csv;
                       timeout_s;
                     })))
  | Some op -> Error (id, reject "bad_request" "unknown op %S" op)

let json_of_submit (s : submit) =
  Jsonx.Obj
    ([
       ("op", Jsonx.Str "submit");
       ("id", Jsonx.Str s.id);
       ("experiments", Jsonx.List (List.map (fun e -> Jsonx.Str e) s.experiments));
       ("benchmarks", Jsonx.List (List.map (fun b -> Jsonx.Str b) s.benchmarks));
       ( "config",
         Jsonx.Obj
           ([
              ("width", Jsonx.Int s.width);
              ("seed", Jsonx.Int s.seed);
              ("threshold", Jsonx.Float s.threshold);
            ]
           @ s.overrides) );
       ("format", Jsonx.Str (if s.csv then "csv" else "ascii"));
     ]
    @ (match s.sweeps with
      | [] -> []
      | sweeps ->
          [
            ( "sweeps",
              Jsonx.Obj
                (List.map
                   (fun (name, points) ->
                     ( name,
                       Jsonx.List
                         (List.map
                            (fun (label, overrides) ->
                              Jsonx.Obj
                                [
                                  ("label", Jsonx.Str label);
                                  ("config", Jsonx.Obj overrides);
                                ])
                            points) ))
                   sweeps) );
          ])
    @
    match s.timeout_s with
    | None -> []
    | Some t -> [ ("timeout_s", Jsonx.Float t) ])

(* --- response frames --- *)

let event ~id ~event fields =
  Jsonx.Obj ((("id", Jsonx.Str id) :: ("event", Jsonx.Str event) :: fields))

let accepted ~id ~artifacts ~queue_depth =
  event ~id ~event:"accepted"
    [
      ("artifacts", Jsonx.List (List.map (fun a -> Jsonx.Str a) artifacts));
      ("queue_depth", Jsonx.Int queue_depth);
    ]

let result ~id ~artifact ~data =
  event ~id ~event:"result"
    [ ("artifact", Jsonx.Str artifact); ("data", Jsonx.Str data) ]

let done_ ~id ~wall_s = event ~id ~event:"done" [ ("wall_s", Jsonx.Float wall_s) ]

let error ~id (r : reject) =
  event ~id ~event:"error"
    [ ("code", Jsonx.Str r.code); ("message", Jsonx.Str r.message) ]
