(* Request semantics shared by the in-process server, the sharded
   supervisor and its forked workers: building the experiment [Config.t]
   from a submit (core fields plus validated machine-config overrides),
   resolving benchmark models, computing artifact render keys — the
   identity used both for graph dedup and for shard routing — and
   declaring artifact render nodes on a graph.

   Supervisor and workers must agree exactly on all of this: the
   supervisor routes an artifact to the shard its render key hashes to,
   and the worker dedups equal work under the same key. Keys digest
   [Marshal] bytes with [Closures], which is stable across forked workers
   because they share the supervisor's process image. *)

module G = Vp_exec.Graph

(* --- config construction ------------------------------------------------ *)

(* Mirror of the CLI's config construction (bin/vliw_vp.ml) — byte-identity
   of served results with direct runs depends on building the identical
   [Config.t], which also makes the job keys (and so dedup and the warm
   cache) line up. *)
let build_config ~width ~seed ~threshold =
  let base = Vliw_vp.Config.default in
  {
    base with
    Vliw_vp.Config.width;
    seed;
    policy = { base.policy with threshold };
  }

(* Wire names for profiling-predictor kinds ("stride", "fcm-2", ...). *)
let predictor_of_name name =
  let module P = Vp_predict.Predictor in
  let fcm_order default =
    match String.index_opt name '-' with
    | None -> Some default
    | Some i -> (
        match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
        | Some o when o >= 1 && o <= 8 -> Some o
        | _ -> None)
  in
  let prefixed p = name = p || String.starts_with ~prefix:(p ^ "-") name in
  if name = "last-value" then Some P.Last_value
  else if name = "stride" then Some P.Stride
  else if prefixed "fcm" then
    Option.map (fun order -> P.Fcm { order; table_bits = 12 }) (fcm_order 2)
  else if prefixed "dfcm" then
    Option.map (fun order -> P.Dfcm { order; table_bits = 12 }) (fcm_order 2)
  else if prefixed "hybrid" then
    Option.map
      (fun order -> P.Hybrid_stride_fcm { order; table_bits = 12 })
      (fcm_order 2)
  else None

(* One machine-config override: apply a validated JSON value to the
   config, or explain why it is invalid. Core keys (width, seed,
   threshold) are accepted too so sweep points can sweep them. *)
let apply_override (c : Vliw_vp.Config.t) (key, (v : Jsonx.t)) :
    (Vliw_vp.Config.t, string) result =
  let module C = Vliw_vp.Config in
  let int_range lo hi f =
    match Jsonx.get_int v with
    | Some n when n >= lo && n <= hi -> Ok (f n)
    | Some n -> Error (Printf.sprintf "%s out of range [%d, %d]: %d" key lo hi n)
    | None -> Error (Printf.sprintf "%s must be an integer" key)
  in
  match key with
  | "width" -> int_range 1 64 (fun width -> { c with C.width })
  | "seed" -> int_range min_int max_int (fun seed -> { c with C.seed })
  | "threshold" -> (
      match Jsonx.get_float v with
      | Some t when t >= 0.0 && t <= 1.0 ->
          Ok { c with C.policy = { c.C.policy with threshold = t } }
      | Some t -> Error (Printf.sprintf "threshold out of range: %g" t)
      | None -> Error "threshold must be a number")
  | "max_enumerated_predictions" ->
      int_range 0 16 (fun max_enumerated_predictions ->
          { c with C.max_enumerated_predictions })
  | "monte_carlo_draws" ->
      int_range 1 100_000 (fun monte_carlo_draws ->
          { c with C.monte_carlo_draws })
  | "ccb_capacity" -> (
      match v with
      | Jsonx.Null -> Ok { c with C.ccb_capacity = None }
      | _ ->
          int_range 1 1_000_000 (fun n -> { c with C.ccb_capacity = Some n }))
  | "cce_retire_width" ->
      int_range 1 64 (fun cce_retire_width -> { c with C.cce_retire_width })
  | "branch_penalty" ->
      int_range 0 1_000 (fun branch_penalty -> { c with C.branch_penalty })
  | "miss_penalty" ->
      int_range 0 100_000 (fun miss_penalty -> { c with C.miss_penalty })
  | "trace_length" ->
      int_range 1 10_000_000 (fun trace_length -> { c with C.trace_length })
  | "charge_cce_drain" -> (
      match Jsonx.get_bool v with
      | Some charge_cce_drain -> Ok { c with C.charge_cce_drain }
      | None -> Error "charge_cce_drain must be a boolean")
  | "profile_predictors" -> (
      match v with
      | Jsonx.Null -> Ok { c with C.profile_predictors = None }
      | Jsonx.List names ->
          let rec go acc = function
            | [] -> Ok { c with C.profile_predictors = Some (List.rev acc) }
            | x :: rest -> (
                match Option.bind (Jsonx.get_string x) predictor_of_name with
                | Some kind -> go (kind :: acc) rest
                | None ->
                    Error
                      "profile_predictors must be a list of predictor names \
                       (last-value, stride, fcm[-N], dfcm[-N], hybrid[-N])")
          in
          if names = [] then Error "profile_predictors must not be empty"
          else go [] names
      | _ -> Error "profile_predictors must be a list of names or null")
  | _ -> Error (Printf.sprintf "unknown config key %S" key)

let apply_overrides config overrides =
  List.fold_left
    (fun acc ov ->
      match acc with Error _ -> acc | Ok c -> apply_override c ov)
    (Ok config) overrides

(* --- the validated request spec ---------------------------------------- *)

type t = {
  config : Vliw_vp.Config.t;  (* core fields + overrides, fully applied *)
  models : Vp_workload.Spec_model.t list;
  csv : bool;
  sweeps : (string * (string * Vliw_vp.Config.t) list) list;
      (* custom sweeps: each point's overrides applied to [config] *)
}

let resolve_models = function
  | [] -> Ok Vp_workload.Spec_model.all
  | names ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match Vp_workload.Spec_model.by_name n with
            | Some m -> go (m :: acc) rest
            | None -> Error n)
      in
      go [] names

let of_submit (s : Protocol.submit) : (t, Protocol.reject) result =
  match resolve_models s.benchmarks with
  | Error name ->
      Error (Protocol.reject "unknown_benchmark" "unknown benchmark %S" name)
  | Ok models -> (
      let base =
        build_config ~width:s.width ~seed:s.seed ~threshold:s.threshold
      in
      match apply_overrides base s.overrides with
      | Error msg -> Error (Protocol.reject "bad_config" "%s" msg)
      | Ok config ->
          let rec sweeps acc = function
            | [] -> Ok (List.rev acc)
            | (name, points) :: rest -> (
                let rec go pacc = function
                  | [] -> Ok (name, List.rev pacc)
                  | (label, overrides) :: prest -> (
                      match apply_overrides config overrides with
                      | Error msg ->
                          Error
                            (Protocol.reject "bad_sweep"
                               "sweep %S, point %S: %s" name label msg)
                      | Ok pconfig -> go ((label, pconfig) :: pacc) prest)
                in
                match go [] points with
                | Error _ as e -> e
                | Ok sweep -> sweeps (sweep :: acc) rest)
          in
          Result.map
            (fun sweeps -> { config; models; csv = s.csv; sweeps })
            (sweeps [] s.sweeps))

(* --- render keys and shard routing -------------------------------------- *)

let sweep_name artifact =
  if String.length artifact > 6 && String.sub artifact 0 6 = "sweep:" then
    Some (String.sub artifact 6 (String.length artifact - 6))
  else None

(* The render node's content address. For custom sweeps the applied point
   configs are salted in: two requests declaring different points under
   the same sweep name (and base config) must not dedup onto each other. *)
let render_key spec ~artifact =
  let salt =
    match sweep_name artifact with
    | None -> []
    | Some name -> (
        match List.assoc_opt name spec.sweeps with
        | Some points -> points
        | None -> [])
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( "serve-render",
            artifact,
            Vliw_vp.Spec_unit.version,
            spec.models,
            spec.config,
            spec.csv,
            salt )
          [ Marshal.Closures ]))

(* Shard routing: a stable function of the render key alone, so equal work
   always lands on the same shard (preserving in-flight dedup) and the
   mapping survives a shard re-fork. *)
let shard_of_key ~workers key =
  if workers <= 1 then 0
  else int_of_string ("0x" ^ String.sub key 0 7) mod workers

let ablate_sweeps =
  [
    ("threshold", Vliw_vp.Experiments.threshold_sweep);
    ("predictions", Vliw_vp.Experiments.prediction_budget_sweep);
    ("ccb", Vliw_vp.Experiments.ccb_capacity_sweep);
    ("syncbits", Vliw_vp.Experiments.sync_width_sweep);
    ("ccewidth", Vliw_vp.Experiments.cce_width_sweep);
    ("predictors", Vliw_vp.Experiments.predictor_sweep);
    ("accounting", Vliw_vp.Experiments.accounting_sweep);
  ]

(* --- artifact declaration ----------------------------------------------- *)

(* Declare the artifact's work on the shared graph and return one node
   whose value is the artifact's rendered bytes — exactly the bytes
   [vliw_vp all] prints for that artifact, trailing separator newline
   included, so a client can reassemble the byte-identical document. The
   render node is a [~cache:false] reducer like the experiments' own: its
   key dedups repeat submissions at the graph level (the graph keeps
   finished nodes — up to the node-cache LRU — so a repeated artifact
   answers without touching the store), while the underlying simulation
   leaves dedup/cache exactly as they do for the CLI. *)
let declare_artifact g spec artifact : string G.node =
  let module E = Vliw_vp.Experiments in
  let module S = E.Suite in
  let { config; models; csv; sweeps = _ } = spec in
  let format = if csv then `Csv else `Ascii in
  let key = render_key spec ~artifact in
  let render ?(deps = []) f =
    G.node g ~label:("render:" ^ artifact) ~group:"serve" ~cache:false ~key
      ~deps
      (fun _ctx -> f ())
  in
  let with_summaries f =
    let n = S.run_all g ~config models in
    render ~deps:[ G.pack n ] (fun () -> f (G.value n))
  in
  let ablation_artifact ~title_sweep settings declare =
    let nodes = List.map (fun m -> (m, declare m settings)) models in
    render
      ~deps:(List.map (fun (_, n) -> G.pack n) nodes)
      (fun () ->
        String.concat ""
          (List.map
             (fun ((m : Vp_workload.Spec_model.t), n) ->
               E.render_ablation ~format
                 ~title:
                   (Printf.sprintf "%s: %s sweep" m.Vp_workload.Spec_model.name
                      title_sweep)
                 (G.value n)
               ^ "\n")
             nodes))
  in
  match artifact with
  | "table2" -> with_summaries (fun s -> E.render_table2 ~format s ^ "\n")
  | "table3" -> with_summaries (fun s -> E.render_table3 ~format s ^ "\n")
  | "fig8" -> with_summaries (fun s -> E.render_figure8 s ^ "\n")
  | "comparison" ->
      with_summaries (fun s -> E.render_comparison ~format s ^ "\n")
  | "table4" ->
      let n = S.table4 g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_table4 ~format (G.value n) ^ "\n")
  | "regions" ->
      let n = S.regions g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_regions ~format (G.value n) ^ "\n")
  | "regions:frontier" ->
      let n = S.regions_frontier g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_regions_frontier ~format (G.value n) ^ "\n")
  | "overlap" ->
      let n = S.overlap_validation g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_overlap ~format (G.value n) ^ "\n")
  | "hyperblocks" ->
      let n = S.hyperblocks g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_hyperblocks ~format (G.value n) ^ "\n")
  | "hardware" ->
      let n = S.hardware_validation g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          Vliw_vp.Trace_sim.render (G.value n) ^ "\n")
  | "stability" ->
      let n = S.stability g ~config models in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_stability ~format (G.value n) ^ "\n")
  | "recovery" ->
      let model = List.hd models in
      let n = S.recovery_sensitivity g ~config model in
      render ~deps:[ G.pack n ] (fun () ->
          E.render_recovery_sensitivity ~format
            ~bench:model.Vp_workload.Spec_model.name (G.value n)
          ^ "\n")
  | "example" ->
      render (fun () -> Format.asprintf "%a@." Vliw_vp.Example.describe ())
  | _ -> (
      match sweep_name artifact with
      | Some name when List.mem_assoc name spec.sweeps ->
          let points = List.assoc name spec.sweeps in
          ablation_artifact ~title_sweep:name points (fun m points ->
              S.config_sweep g ~config m points)
      | _ -> (
          match
            if String.length artifact > 7 && String.sub artifact 0 7 = "ablate:"
            then
              List.assoc_opt
                (String.sub artifact 7 (String.length artifact - 7))
                ablate_sweeps
            else None
          with
          | None ->
              (* [Protocol.expand_experiments] validated the name; reaching
                 here means the registry and this match diverged *)
              invalid_arg ("Vp_serve.Spec: unmapped artifact " ^ artifact)
          | Some sweep ->
              let title_sweep =
                String.sub artifact 7 (String.length artifact - 7)
              in
              ablation_artifact ~title_sweep sweep (fun m sweep ->
                  S.ablate g ~config m sweep)))
