(** Daemon telemetry: request counters, per-client counters, latency
    percentiles. All calls happen on the serve loop thread — the type is
    deliberately not thread-safe.

    The [stats] response and the periodic snapshot file both render
    {!json}, which combines these server-side counters with the shared
    execution context's {!Vp_exec.Progress.snapshot} — the cache hit rate
    and in-flight dedup count that prove overlapping requests resolve to
    one computation. *)

type t

val create : unit -> t

(** {1 Connection lifecycle} *)

val client_connected : t -> cid:int -> peer:string -> unit
val client_disconnected : t -> cid:int -> unit

(** {1 Request lifecycle} *)

val received : t -> unit
(** Any parsed request frame. *)

val accepted : t -> cid:int -> unit
val completed : t -> cid:int -> wall:float -> unit
val failed : t -> cid:int -> unit
val timed_out : t -> cid:int -> unit
val rejected : t -> cid:int -> code:string -> unit

(** {1 Rendering} *)

val json : t -> pool:Vp_exec.Progress.snapshot -> queue_depth:int -> Jsonx.t
(** The full stats object: {!core_sections} followed by
    {!pool_sections}. *)

val core_sections : t -> queue_depth:int -> (string * Jsonx.t) list
(** Just the server-side sections ([uptime_s], [requests], [latency],
    [clients]) — the supervisor composes these with graph/cache sections
    aggregated across its workers' snapshots and a [workers] section of
    its own. *)

val pool_sections : Vp_exec.Progress.snapshot -> (string * Jsonx.t) list
(** The [graph] and [cache] sections of one execution context's
    counters (including [node_evictions], the node-cache LRU's count of
    dropped completed nodes). *)
