(* Server-side telemetry: request counters, per-client counters and
   request-latency percentiles. Single-threaded by construction — every
   recording call happens on the serve loop thread — so no locking. *)

type client = {
  cid : int;
  peer : string;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable active : int;  (* admitted requests not yet done *)
}

type t = {
  t0 : float;
  mutable received : int;  (* parsed request frames, any op *)
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;  (* job_failed errors streamed back *)
  mutable timed_out : int;
  mutable rejected : (string * int) list;  (* per error code *)
  mutable connections : int;  (* lifetime *)
  clients : (int, client) Hashtbl.t;  (* currently connected *)
  (* all completed-request latencies, seconds; capped reservoir *)
  mutable latencies : float array;
  mutable n_lat : int;
}

let reservoir_cap = 65536

let create () =
  {
    t0 = Unix.gettimeofday ();
    received = 0;
    accepted = 0;
    completed = 0;
    failed = 0;
    timed_out = 0;
    rejected = [];
    connections = 0;
    clients = Hashtbl.create 16;
    latencies = Array.make 256 0.0;
    n_lat = 0;
  }

let client_connected t ~cid ~peer =
  t.connections <- t.connections + 1;
  Hashtbl.replace t.clients cid
    { cid; peer; submitted = 0; completed = 0; rejected = 0; active = 0 }

let client_disconnected t ~cid = Hashtbl.remove t.clients cid

let client t cid = Hashtbl.find_opt t.clients cid

let received t = t.received <- t.received + 1

let accepted t ~cid =
  t.accepted <- t.accepted + 1;
  match client t cid with
  | Some c ->
      c.submitted <- c.submitted + 1;
      c.active <- c.active + 1
  | None -> ()

let record_latency t wall =
  if t.n_lat = Array.length t.latencies && t.n_lat < reservoir_cap then begin
    let bigger = Array.make (min reservoir_cap (2 * t.n_lat)) 0.0 in
    Array.blit t.latencies 0 bigger 0 t.n_lat;
    t.latencies <- bigger
  end;
  if t.n_lat < Array.length t.latencies then begin
    t.latencies.(t.n_lat) <- wall;
    t.n_lat <- t.n_lat + 1
  end

let finish_one t ~cid =
  match client t cid with
  | Some c -> c.active <- max 0 (c.active - 1)
  | None -> ()

let completed t ~cid ~wall =
  t.completed <- t.completed + 1;
  record_latency t wall;
  finish_one t ~cid;
  match client t cid with
  | Some c -> c.completed <- c.completed + 1
  | None -> ()

let failed t ~cid =
  t.failed <- t.failed + 1;
  finish_one t ~cid

let timed_out t ~cid =
  t.timed_out <- t.timed_out + 1;
  finish_one t ~cid

let rejected t ~cid ~code =
  (t.rejected <-
     (match List.assoc_opt code t.rejected with
     | Some n -> (code, n + 1) :: List.remove_assoc code t.rejected
     | None -> (code, 1) :: t.rejected));
  match client t cid with
  | Some c -> c.rejected <- c.rejected + 1
  | None -> ()

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) idx))

let latency_json t =
  let sorted = Array.sub t.latencies 0 t.n_lat in
  Array.sort compare sorted;
  let ms p = Jsonx.Float (1000.0 *. percentile sorted p) in
  Jsonx.Obj
    [
      ("count", Jsonx.Int t.n_lat);
      ("p50_ms", ms 0.50);
      ("p95_ms", ms 0.95);
      ("p99_ms", ms 0.99);
      ( "max_ms",
        Jsonx.Float
          (if t.n_lat = 0 then 0.0 else 1000.0 *. sorted.(t.n_lat - 1)) );
    ]

(* Server-side sections alone: uptime, request counters, latency
   percentiles, per-client counters. The supervisor composes these with
   graph/cache sections aggregated across its workers' snapshots. *)
let core_sections t ~queue_depth =
  let clients =
    Hashtbl.fold (fun _ c acc -> c :: acc) t.clients []
    |> List.sort (fun a b -> compare a.cid b.cid)
  in
  [
    ("uptime_s", Jsonx.Float (Unix.gettimeofday () -. t.t0));
    ( "requests",
      Jsonx.Obj
        [
          ("received", Jsonx.Int t.received);
          ("accepted", Jsonx.Int t.accepted);
          ("completed", Jsonx.Int t.completed);
          ("failed", Jsonx.Int t.failed);
          ("timed_out", Jsonx.Int t.timed_out);
          ( "rejected",
            Jsonx.Obj (List.map (fun (c, n) -> (c, Jsonx.Int n)) t.rejected) );
          ("queue_depth", Jsonx.Int queue_depth);
        ] );
    ("latency", latency_json t);
    ( "clients",
      Jsonx.Obj
        [
          ("active", Jsonx.Int (Hashtbl.length t.clients));
          ("lifetime", Jsonx.Int t.connections);
          ( "counters",
            Jsonx.List
              (List.map
                 (fun c ->
                   Jsonx.Obj
                     [
                       ("cid", Jsonx.Int c.cid);
                       ("peer", Jsonx.Str c.peer);
                       ("submitted", Jsonx.Int c.submitted);
                       ("completed", Jsonx.Int c.completed);
                       ("rejected", Jsonx.Int c.rejected);
                       ("active", Jsonx.Int c.active);
                     ])
                 clients) );
        ] );
  ]

(* Graph/cache sections of one execution context's counters — cache
   hits/misses, in-flight dedup, LRU evictions — which is where the
   serve story's "payload jobs run once" proof lives. *)
let pool_sections (pool : Vp_exec.Progress.snapshot) =
  let cache_total = pool.cache_hits + pool.cache_misses in
  [
    ( "graph",
      Jsonx.Obj
        [
          ("jobs_queued", Jsonx.Int pool.queued);
          ("jobs_done", Jsonx.Int pool.completed);
          ("jobs_failed", Jsonx.Int pool.failed);
          ("deduped", Jsonx.Int pool.deduped);
          ("peak_in_flight", Jsonx.Int pool.peak_in_flight);
          ("node_evictions", Jsonx.Int pool.nodes_evicted);
        ] );
    ( "cache",
      Jsonx.Obj
        [
          ("hits", Jsonx.Int pool.cache_hits);
          ("misses", Jsonx.Int pool.cache_misses);
          ("evicted", Jsonx.Int pool.corrupt_evicted);
          ( "hit_rate",
            Jsonx.Float
              (if cache_total = 0 then 0.0
               else float_of_int pool.cache_hits /. float_of_int cache_total) );
        ] );
  ]

(* The full stats object of a [stats] response and of the periodic
   snapshot file. *)
let json t ~(pool : Vp_exec.Progress.snapshot) ~queue_depth =
  Jsonx.Obj (core_sections t ~queue_depth @ pool_sections pool)
