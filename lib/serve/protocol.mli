(** The serve wire protocol, shared by daemon and clients.

    {b Framing.} Each message is one frame: the payload's byte length in
    ASCII decimal, one ['\n'], then exactly that many payload bytes — a
    compact JSON object. Length-prefixing (rather than newline-delimited
    JSON) lets result frames carry multi-kilobyte rendered tables with
    embedded newlines without any escaping subtleties on the read path,
    and makes oversized frames rejectable before buffering them.

    {b Requests} (client to server): [submit], [stats], [ping],
    [shutdown]. {b Responses} (server to client): [accepted], [result]
    (streamed, one per artifact, in {e completion} order), [done],
    [error], [stats], [pong], [shutting_down]. Every response carries the
    request's [id], so one connection can pipeline many requests and sort
    the interleaved responses. DESIGN.md ("Serve wire protocol") is the
    schema reference. *)

val default_max_frame : int
(** 4 MiB. *)

val frame : string -> string
(** [frame payload] is the on-wire encoding. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking full write of one frame. *)

val read_frame : ?max_frame:int -> Unix.file_descr -> string option
(** Blocking read of one frame's payload; [None] on clean EOF at a frame
    boundary. Raises [Failure] on a malformed header, a truncated frame or
    one exceeding [max_frame]. *)

(** Incremental frame decoder for the server's non-blocking sockets. *)
module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t
  val feed : t -> bytes -> int -> unit

  val next : t -> (string option, string) result
  (** [Ok (Some payload)] — a whole frame was buffered; call again, more
      may follow. [Ok None] — need more bytes. [Error msg] — malformed or
      oversized; drop the connection. *)
end

(** {1 Experiments} *)

val all_sequence : string list
(** What ["all"] expands to — the artifact sequence of [vliw_vp all], in
    its print order. *)

val known_experiments : string list

val expand_experiments :
  ?sweeps:string list -> string list -> (string list, string) result
(** Expand ["all"] and validate names ([Error name] on an unknown one).
    The empty list means ["all"]. [sweeps] are the request-declared custom
    sweep names, each addressable as ["sweep:NAME"]. *)

(** {1 Requests} *)

type submit = {
  id : string;
  experiments : string list;  (** expanded, validated, request order *)
  benchmarks : string list;  (** validated names; [[]] = the full set *)
  width : int;
  seed : int;
  threshold : float;
  overrides : (string * Jsonx.t) list;
      (** machine-config overrides — the non-core keys of the request's
          ["config"] object. Shape-checked at parse time; the allowed keys
          and value types are validated at admission by {!Spec}, which
          rejects with code [bad_config]. *)
  sweeps : (string * (string * (string * Jsonx.t) list) list) list;
      (** custom sweeps declared by the request:
          [{"sweeps": {"NAME": [{"label": L, "config": {...}}, ...]}}].
          Each is addressable from [experiments] as ["sweep:NAME"]; the
          point configs take the same keys as ["config"] (core and
          override) and are validated at admission ([bad_sweep]). *)
  csv : bool;
  timeout_s : float option;  (** [None] = the server default *)
}

type request =
  | Submit of submit
  | Stats of string  (** payload: request id *)
  | Ping of string
  | Shutdown of string

type reject = { code : string; message : string }
(** Structured rejection — [code] is one of the machine-readable error
    codes listed in DESIGN.md ([bad_request], [bad_config], [bad_sweep],
    [unknown_experiment], [unknown_benchmark], [overloaded],
    [quota_exceeded], [timeout], [job_failed], [worker_lost],
    [shutting_down], [protocol]). *)

val reject : string -> ('a, unit, string, reject) format4 -> 'a

val request_of_json : Jsonx.t -> (request, string * reject) result
(** Parse and validate one request frame; errors carry the request id ([""]
    if absent) for the error frame. Benchmark names are validated by the
    server, which owns the model list. *)

val json_of_submit : submit -> Jsonx.t

(** {1 Response frames} *)

val event : id:string -> event:string -> (string * Jsonx.t) list -> Jsonx.t

val accepted : id:string -> artifacts:string list -> queue_depth:int -> Jsonx.t

val result : id:string -> artifact:string -> data:string -> Jsonx.t

val done_ : id:string -> wall_s:float -> Jsonx.t

val error : id:string -> reject -> Jsonx.t
