type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape_into b s =
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* --- parsing: plain recursive descent --- *)

exception Parse_error of string

let parse_exn s =
  let len = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    (* minimal encoder; surrogate pairs are not recombined — the protocol
       payloads are tables and identifiers, not astral text *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= len then error "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
             if !pos + 4 > len then error "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> error "bad \\u escape"
             in
             utf8_of_code b code
         | _ -> error "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    match int_of_string_opt raw with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt raw with
        | Some f -> Float f
        | None -> error (Printf.sprintf "bad number %S" raw))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (f :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then error "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_string = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List xs -> Some xs | _ -> None

let string_member name v = Option.bind (member name v) get_string
let int_member name v = Option.bind (member name v) get_int
let float_member name v = Option.bind (member name v) get_float
let list_member name v = Option.bind (member name v) get_list
