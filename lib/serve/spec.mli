(** Request semantics shared by the in-process server, the sharded
    supervisor and its forked workers: turning a validated
    {!Protocol.submit} into the experiment configuration, benchmark
    models and custom-sweep points it denotes, computing artifact render
    keys — the identity used both for graph-level dedup and for shard
    routing — and declaring artifact render nodes on a graph.

    Supervisor and workers must agree exactly on all of this: the
    supervisor routes an artifact to the shard its render key hashes to,
    and the worker dedups equal work under the same key. The keys digest
    [Marshal] bytes with [Closures], which is stable across forked
    workers because they share one process image. *)

type t = {
  config : Vliw_vp.Config.t;
      (** core fields plus machine-config overrides, fully applied *)
  models : Vp_workload.Spec_model.t list;
  csv : bool;
  sweeps : (string * (string * Vliw_vp.Config.t) list) list;
      (** custom sweeps, each point's overrides applied on top of
          [config] *)
}

val of_submit : Protocol.submit -> (t, Protocol.reject) result
(** Validate and resolve a submit: benchmark names
    ([unknown_benchmark]), machine-config overrides ([bad_config]) and
    custom-sweep points ([bad_sweep]). Pure — admission decisions
    (quotas, shutdown) stay with the caller. *)

val build_config :
  width:int -> seed:int -> threshold:float -> Vliw_vp.Config.t
(** The CLI-equivalent core configuration (see bin/vliw_vp.ml);
    byte-identity of served results depends on both sides building the
    identical [Config.t]. *)

val resolve_models :
  string list -> (Vp_workload.Spec_model.t list, string) result
(** [[]] means the full benchmark set; [Error name] on an unknown one. *)

val render_key : t -> artifact:string -> string
(** Content address of one artifact's render node. Custom sweeps salt in
    their applied point configs, so same-named sweeps with different
    points never dedup onto each other. *)

val shard_of_key : workers:int -> string -> int
(** The shard an artifact key routes to — a stable function of the key
    alone, so equal work always lands on the same shard (preserving
    in-flight dedup) and the mapping survives a shard re-fork. *)

val declare_artifact :
  Vp_exec.Graph.t -> t -> string -> string Vp_exec.Graph.node
(** Declare the artifact's work on the graph; the node's value is the
    artifact's rendered bytes — exactly what [vliw_vp all] prints for it,
    trailing separator newline included. Raises [Invalid_argument] on an
    artifact name {!Protocol.expand_experiments} would have rejected. *)
