(* Blocking client for the serve protocol. One connection can pipeline
   many requests: every response frame carries its request id, so the
   client keeps a pending table and routes interleaved frames to the
   right request's state. [await] reads frames (dispatching events for
   other pending requests along the way) until its own request settles —
   which is what lets the load generator keep hundreds of requests in
   flight over a handful of connections. *)

type state = {
  artifacts : string list;  (* request order, for reassembly *)
  mutable results : (string * string) list;  (* completion order, reversed *)
  mutable error : (string * string) option;  (* code, message *)
  mutable wall_s : float;
  mutable stats : Jsonx.t option;
  mutable queue_depth : int;
  mutable fin : bool;
}

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  pending : (string, state) Hashtbl.t;
  mutable next_id : int;
  tag : string;  (* per-connection id prefix *)
  mutable closed : bool;
}

let conn_seq = Atomic.make 0

let connect_fd fd =
  {
    fd;
    max_frame = Protocol.default_max_frame;
    pending = Hashtbl.create 16;
    next_id = 0;
    tag =
      Printf.sprintf "c%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add conn_seq 1);
    closed = false;
  }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  connect_fd fd

let connect_tcp ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  connect_fd fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

let fresh_id t =
  let n = t.next_id in
  t.next_id <- n + 1;
  Printf.sprintf "%s-%d" t.tag n

let state_of t id =
  match Hashtbl.find_opt t.pending id with
  | Some s -> s
  | None ->
      (* server-initiated or unknown id: track it so its frames are not
         mistaken for protocol errors *)
      let s =
        {
          artifacts = [];
          results = [];
          error = None;
          wall_s = 0.0;
          stats = None;
          queue_depth = 0;
          fin = false;
        }
      in
      Hashtbl.replace t.pending id s;
      s

let dispatch t payload =
  match Jsonx.parse payload with
  | Error msg -> failwith ("serve client: bad frame from server: " ^ msg)
  | Ok json -> (
      let id = Option.value ~default:"" (Jsonx.string_member "id" json) in
      let s = state_of t id in
      match Jsonx.string_member "event" json with
      | Some "accepted" ->
          s.queue_depth <-
            Option.value ~default:0 (Jsonx.int_member "queue_depth" json)
      | Some "result" ->
          let artifact =
            Option.value ~default:"" (Jsonx.string_member "artifact" json)
          in
          let data =
            Option.value ~default:"" (Jsonx.string_member "data" json)
          in
          s.results <- (artifact, data) :: s.results
      | Some "done" ->
          s.wall_s <-
            Option.value ~default:0.0 (Jsonx.float_member "wall_s" json);
          s.fin <- true
      | Some "error" ->
          let code =
            Option.value ~default:"error" (Jsonx.string_member "code" json)
          in
          let message =
            Option.value ~default:"" (Jsonx.string_member "message" json)
          in
          s.error <- Some (code, message);
          s.fin <- true
      | Some "stats" ->
          s.stats <- Jsonx.member "stats" json;
          s.fin <- true
      | Some ("pong" | "shutting_down") -> s.fin <- true
      | Some _ | None -> ())

let read_one t =
  match Protocol.read_frame ~max_frame:t.max_frame t.fd with
  | Some payload -> dispatch t payload
  | None -> failwith "serve client: server closed the connection"

(* Reassemble results into the request's artifact order. Completion order
   is nondeterministic; request order is what makes the concatenated
   document byte-identical to the direct CLI run. Duplicate artifact names
   consume successive completions. *)
let in_request_order artifacts results =
  let remaining = ref results in
  let take artifact =
    let rec go acc = function
      | [] -> None
      | (a, d) :: rest when a = artifact ->
          remaining := List.rev_append acc rest;
          Some (a, d)
      | x :: rest -> go (x :: acc) rest
    in
    go [] !remaining
  in
  let ordered = List.filter_map take artifacts in
  ordered @ !remaining

type outcome = {
  results : (string * string) list;  (* request order *)
  error : (string * string) option;
  wall_s : float;
  queue_depth : int;
}

let outcome_of (s : state) =
  {
    results = in_request_order s.artifacts (List.rev s.results);
    error = s.error;
    wall_s = s.wall_s;
    queue_depth = s.queue_depth;
  }

let await t ~id =
  match Hashtbl.find_opt t.pending id with
  | None -> invalid_arg ("Vp_serve.Client.await: unknown request id " ^ id)
  | Some s ->
      while not s.fin do
        read_one t
      done;
      Hashtbl.remove t.pending id;
      outcome_of s

let submit_async t (spec : Protocol.submit) =
  let spec = if spec.id = "" then { spec with id = fresh_id t } else spec in
  Hashtbl.replace t.pending spec.id
    {
      artifacts = spec.experiments;
      results = [];
      error = None;
      wall_s = 0.0;
      stats = None;
      queue_depth = 0;
      fin = false;
    };
  Protocol.write_frame t.fd (Jsonx.to_string (Protocol.json_of_submit spec));
  spec.id

let submit t spec = await t ~id:(submit_async t spec)

let simple_op t op =
  let id = fresh_id t in
  Hashtbl.replace t.pending id
    {
      artifacts = [];
      results = [];
      error = None;
      wall_s = 0.0;
      stats = None;
      queue_depth = 0;
      fin = false;
    };
  Protocol.write_frame t.fd
    (Jsonx.to_string
       (Jsonx.Obj [ ("op", Jsonx.Str op); ("id", Jsonx.Str id) ]));
  id

let stats t =
  let id = simple_op t "stats" in
  let o = Hashtbl.find t.pending id in
  while not o.fin do
    read_one t
  done;
  Hashtbl.remove t.pending id;
  match o.stats with
  | Some j -> j
  | None -> failwith "serve client: stats response carried no stats object"

let ping t = ignore (await t ~id:(simple_op t "ping"))

let shutdown t = ignore (await t ~id:(simple_op t "shutdown"))

(* Convenience: a submit spec with CLI-equivalent defaults. *)
let submit_spec ?(id = "") ?(experiments = []) ?(benchmarks = [])
    ?(width = 4) ?(seed = 42) ?(threshold = 0.65) ?(csv = false)
    ?(overrides = []) ?(sweeps = []) ?timeout_s () : Protocol.submit =
  match Protocol.expand_experiments ~sweeps:(List.map fst sweeps) experiments
  with
  | Error name -> invalid_arg ("unknown experiment " ^ name)
  | Ok experiments ->
      {
        id;
        experiments;
        benchmarks;
        width;
        seed;
        threshold;
        csv;
        overrides;
        sweeps;
        timeout_s;
      }
