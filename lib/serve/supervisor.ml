(* The sharded daemon's front process.

   The supervisor owns the listeners, the clients and the production
   envelope — admission quotas, request deadlines, graceful drain — and
   routes the actual work to [--workers N] forked shard processes, each
   running {!Server.run_worker}: a resident serve loop with its own
   {!Vp_exec.Graph} and worker domains, talking to the supervisor over a
   socketpair with the ordinary frame protocol. All shards share the one
   content-addressed on-disk store, so a result computed by any shard
   warms every later request whichever process it lands in.

   Routing is by artifact identity: each artifact's {!Spec.render_key} —
   the same content address the shard's graph dedups on — hashes to a
   shard ({!Spec.shard_of_key}). Equal work therefore always lands on the
   same shard, preserving in-flight dedup across clients exactly as the
   single-process daemon does, and the mapping is a pure function of the
   key, so it survives a shard being re-forked.

   Fork discipline: OCaml's [Unix.fork] refuses to run once any domain
   exists, so the supervisor forks every shard {e before} a single domain
   is spawned and never creates domains itself — each child spawns its
   own graph workers after the fork, and re-forking a crashed shard stays
   legal for the life of the process.

   Failure containment: a shard that exits or wedges (socketpair EOF, or
   heartbeat silence past {!dead_after_s}) is SIGKILLed and reaped; its
   in-flight sub-requests fail back to their clients as structured
   [worker_lost] errors; the slot is re-forked immediately. Other
   clients, other shards and the supervisor itself never notice beyond
   the error frames. *)

module P = Protocol

let heartbeat_every_s = 2.0
let dead_after_s = 15.0
let stop_grace_s = 5.0

type worker = {
  slot : int;
  pid : int;
  wio : Frameio.t;
  spawned : float;
  restarts : int;  (* re-forks of this slot before this incarnation *)
  mutable up : bool;
  mutable last_seen : float;  (* any frame from the shard *)
  mutable last_ping : float;
  mutable routed : int;  (* lifetime artifacts routed to this slot *)
  mutable inflight : int;  (* unsettled sub-requests *)
  mutable last_pool : Jsonx.t option;  (* most recent stats response *)
}

type conn = {
  io : Frameio.t;
  cid : int;
  mutable outstanding : int;
  mutable dropped : bool;
}

type req = {
  rid : string;
  rconn : conn;
  total : int;
  mutable results_fwd : int;  (* result frames forwarded so far *)
  mutable subs_open : int;  (* sub-requests not yet done/errored *)
  mutable settled : bool;
  deadline : float option;
  rt0 : float;
}

type sub = { s_req : req; s_worker : worker }

(* One fan-out stats collection: a client [stats] request or the periodic
   snapshot-file tick polls every live shard and aggregates the replies. *)
type poll = {
  p_id : string;  (* the id the shards echo back *)
  p_reply : (conn * string) option;  (* client and its request id; [None]
                                        is the snapshot-file tick *)
  mutable p_pending : int list;  (* slots not yet heard from *)
  mutable p_pools : Jsonx.t list;
}

type t = {
  cfg : Server.config;
  make_exec : unit -> Vp_exec.Context.t;
  telemetry : Telemetry.t;
  workers : worker option array;
  subs : (string, sub) Hashtbl.t;
  polls : (string, poll) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable listeners : Unix.file_descr list;
  mutable tcp_l : Unix.file_descr option;
  mutable conns : conn list;
  mutable live : req list;
  mutable outstanding : int;
  mutable shutting : bool;
  mutable stopping : bool;  (* drained; shards told to exit *)
  mutable stop_deadline : float;
  mutable next_cid : int;
  mutable next_sid : int;
  mutable next_pid : int;
  mutable last_stats : float;
}

let live_workers t =
  Array.to_list t.workers |> List.filter_map Fun.id
  |> List.filter (fun w -> w.up)

let send conn json = if not conn.dropped then Frameio.send conn.io json

(* --- shard lifecycle --------------------------------------------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* Descriptors a freshly forked shard inherited but must not hold open:
   the listeners (else a dead supervisor's socket stays connectable), the
   wake pipe, every client connection and every other shard's link. *)
let child_close_list t ~keep =
  t.listeners @ [ t.wake_r; t.wake_w ]
  @ List.map (fun c -> Frameio.fd c.io) t.conns
  @ List.filter_map
      (fun w ->
        if w.up && Frameio.fd w.wio <> keep then Some (Frameio.fd w.wio)
        else None)
      (Array.to_list t.workers |> List.filter_map Fun.id)

let spawn t slot ~restarts ~routed =
  flush stdout;
  flush stderr;
  let sup_fd, w_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      (* the shard: serve the socketpair until told to drain, then die.
         The supervisor owns signal-driven shutdown; a shard must survive
         the terminal's ^C reaching the whole foreground process group. *)
      let code =
        try
          Sys.set_signal Sys.sigint Sys.Signal_ignore;
          Sys.set_signal Sys.sigterm Sys.Signal_ignore;
          close_quiet sup_fd;
          List.iter close_quiet (child_close_list t ~keep:w_fd);
          let exec = t.make_exec () in
          ignore (Server.run_worker ~exec t.cfg w_fd);
          0
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Unix.close w_fd;
      Unix.set_nonblock sup_fd;
      let now = Unix.gettimeofday () in
      t.workers.(slot) <-
        Some
          {
            slot;
            pid;
            wio = Frameio.create ~max_frame:t.cfg.max_frame sup_fd;
            spawned = now;
            restarts;
            up = true;
            last_seen = now;
            last_ping = now;
            routed;
            inflight = 0;
            last_pool = None;
          }

let reap w =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
  try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error (_, _, _) -> ()

(* --- request bookkeeping ----------------------------------------------- *)

let settle_request t (r : req) =
  if not r.settled then begin
    r.settled <- true;
    r.rconn.outstanding <- max 0 (r.rconn.outstanding - 1);
    t.outstanding <- max 0 (t.outstanding - 1)
  end

let reject_submit t conn ~id (rej : P.reject) =
  Telemetry.rejected t.telemetry ~cid:conn.cid ~code:rej.code;
  send conn (P.error ~id rej)

(* --- stats aggregation ------------------------------------------------- *)

let workers_json t =
  Jsonx.List
    (Array.to_list t.workers
    |> List.filter_map Fun.id
    |> List.map (fun w ->
           Jsonx.Obj
             [
               ("slot", Jsonx.Int w.slot);
               ("pid", Jsonx.Int w.pid);
               ("up", Jsonx.Bool w.up);
               ("restarts", Jsonx.Int w.restarts);
               ("routed", Jsonx.Int w.routed);
               ("inflight", Jsonx.Int w.inflight);
               ("uptime_s", Jsonx.Float (Unix.gettimeofday () -. w.spawned));
             ]))

(* Sum the graph/cache sections of the shards' own stats objects. Peak
   in-flight is summed too: it over-counts true simultaneity across
   shards, but as a capacity figure the sum of per-shard peaks is the
   honest bound on what the fleet had running. *)
let aggregate t pools =
  let gi sect field p =
    match Jsonx.member sect p with
    | Some o -> Option.value ~default:0 (Jsonx.int_member field o)
    | None -> 0
  in
  let sum sect field =
    List.fold_left (fun acc p -> acc + gi sect field p) 0 pools
  in
  let hits = sum "cache" "hits" and misses = sum "cache" "misses" in
  let total = hits + misses in
  Jsonx.Obj
    (Telemetry.core_sections t.telemetry ~queue_depth:t.outstanding
    @ [
        ( "graph",
          Jsonx.Obj
            [
              ("jobs_queued", Jsonx.Int (sum "graph" "jobs_queued"));
              ("jobs_done", Jsonx.Int (sum "graph" "jobs_done"));
              ("jobs_failed", Jsonx.Int (sum "graph" "jobs_failed"));
              ("deduped", Jsonx.Int (sum "graph" "deduped"));
              ("peak_in_flight", Jsonx.Int (sum "graph" "peak_in_flight"));
              ("node_evictions", Jsonx.Int (sum "graph" "node_evictions"));
            ] );
        ( "cache",
          Jsonx.Obj
            [
              ("hits", Jsonx.Int hits);
              ("misses", Jsonx.Int misses);
              ("evicted", Jsonx.Int (sum "cache" "evicted"));
              ( "hit_rate",
                Jsonx.Float
                  (if total = 0 then 0.0
                   else float_of_int hits /. float_of_int total) );
            ] );
        ("workers", workers_json t);
      ])

let last_pools t =
  Array.to_list t.workers |> List.filter_map Fun.id
  |> List.filter_map (fun w -> w.last_pool)

let write_stats_file t json =
  match t.cfg.stats_file with
  | None -> ()
  | Some path -> (
      try
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Jsonx.to_string json);
            output_char oc '\n');
        Sys.rename tmp path
      with Sys_error _ -> ())

let finish_poll t p =
  Hashtbl.remove t.polls p.p_id;
  let json = aggregate t p.p_pools in
  match p.p_reply with
  | Some (conn, id) ->
      send conn (P.event ~id ~event:"stats" [ ("stats", json) ])
  | None -> write_stats_file t json

let start_poll t ~reply =
  let pid = Printf.sprintf "st:%d" t.next_pid in
  t.next_pid <- t.next_pid + 1;
  match live_workers t with
  | [] ->
      let p = { p_id = pid; p_reply = reply; p_pending = []; p_pools = [] } in
      finish_poll t p
  | ws ->
      let p =
        {
          p_id = pid;
          p_reply = reply;
          p_pending = List.map (fun w -> w.slot) ws;
          p_pools = [];
        }
      in
      Hashtbl.replace t.polls pid p;
      List.iter
        (fun w ->
          Frameio.send w.wio
            (Jsonx.Obj [ ("op", Jsonx.Str "stats"); ("id", Jsonx.Str pid) ]))
        ws

let poll_drop_slot t slot =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.polls []
  |> List.iter (fun p ->
         if List.mem slot p.p_pending then begin
           p.p_pending <- List.filter (fun s -> s <> slot) p.p_pending;
           if p.p_pending = [] then finish_poll t p
         end)

(* --- shard failure ----------------------------------------------------- *)

(* A shard is gone — EOF, I/O error or heartbeat silence. Kill and reap
   it, fail every request with an in-flight sub on it (structured
   [worker_lost]; the client's resubmit will hit the re-forked shard and,
   for whatever other shards finished meanwhile, the warm store), settle
   any stats polls waiting on it, and re-fork the slot so the next
   request routes normally. During the final drain shards exit on
   purpose: just reap, never re-fork. *)
let on_worker_gone t w =
  if w.up then begin
    w.up <- false;
    Frameio.close w.wio;
    reap w;
    if not t.stopping then begin
      let victims =
        Hashtbl.fold
          (fun sid s acc -> if s.s_worker == w then (sid, s) :: acc else acc)
          t.subs []
      in
      List.iter
        (fun (sid, s) ->
          Hashtbl.remove t.subs sid;
          let r = s.s_req in
          if not r.settled then begin
            send r.rconn
              (P.error ~id:r.rid
                 (P.reject "worker_lost"
                    "shard %d (pid %d) died with the request in flight \
                     (%d/%d artifacts delivered); resubmit to retry"
                    w.slot w.pid r.results_fwd r.total));
            settle_request t r;
            Telemetry.failed t.telemetry ~cid:r.rconn.cid
          end)
        victims;
      poll_drop_slot t w.slot;
      spawn t w.slot ~restarts:(w.restarts + 1) ~routed:w.routed
    end
    else poll_drop_slot t w.slot
  end

(* --- client requests --------------------------------------------------- *)

let handle_submit t conn (s : P.submit) =
  if t.shutting then
    reject_submit t conn ~id:s.id
      (P.reject "shutting_down" "server is draining for shutdown")
  else if t.outstanding >= t.cfg.max_pending then
    reject_submit t conn ~id:s.id
      (P.reject "overloaded" "pending queue full (%d requests); retry later"
         t.cfg.max_pending)
  else if conn.outstanding >= t.cfg.client_quota then
    reject_submit t conn ~id:s.id
      (P.reject "quota_exceeded"
         "client has %d requests outstanding (quota %d)" conn.outstanding
         t.cfg.client_quota)
  else
    match Spec.of_submit s with
    | Error rej -> reject_submit t conn ~id:s.id rej
    | Ok spec ->
        let timeout =
          match s.timeout_s with
          | Some ts when ts > 0.0 -> Some ts
          | Some _ -> None
          | None ->
              if t.cfg.default_timeout_s > 0.0 then
                Some t.cfg.default_timeout_s
              else None
        in
        let now = Unix.gettimeofday () in
        let r =
          {
            rid = s.id;
            rconn = conn;
            total = List.length s.experiments;
            results_fwd = 0;
            subs_open = 0;
            settled = false;
            deadline = Option.map (fun ts -> now +. ts) timeout;
            rt0 = now;
          }
        in
        conn.outstanding <- conn.outstanding + 1;
        t.outstanding <- t.outstanding + 1;
        t.live <- r :: t.live;
        Telemetry.accepted t.telemetry ~cid:conn.cid;
        send conn
          (P.accepted ~id:s.id ~artifacts:s.experiments
             ~queue_depth:t.outstanding);
        (* Route by render key: the shard an artifact hashes to is the
           shard whose graph holds (or will hold) that exact node, so
           concurrent equal requests — from this client or any other —
           dedup inside the shard just as in the single-process daemon.
           Duplicate names in one request share a key, hence a shard. *)
        let n = Array.length t.workers in
        let buckets = Array.make n [] in
        List.iter
          (fun a ->
            let shard =
              Spec.shard_of_key ~workers:n (Spec.render_key spec ~artifact:a)
            in
            buckets.(shard) <- a :: buckets.(shard))
          s.experiments;
        Array.iteri
          (fun slot arts ->
            match List.rev arts with
            | [] -> ()
            | arts -> (
                match t.workers.(slot) with
                | None -> assert false (* every slot is forked at startup *)
                | Some w ->
                    let sid = Printf.sprintf "s:%d" t.next_sid in
                    t.next_sid <- t.next_sid + 1;
                    Hashtbl.replace t.subs sid { s_req = r; s_worker = w };
                    r.subs_open <- r.subs_open + 1;
                    w.routed <- w.routed + List.length arts;
                    w.inflight <- w.inflight + 1;
                    Frameio.send w.wio
                      (P.json_of_submit
                         {
                           s with
                           id = sid;
                           experiments = arts;
                           timeout_s = timeout;
                         })))
          buckets

let handle_client_frame t conn payload =
  match Jsonx.parse payload with
  | Error msg ->
      send conn
        (P.error ~id:"" (P.reject "bad_request" "unparseable frame: %s" msg))
  | Ok json -> (
      Telemetry.received t.telemetry;
      match P.request_of_json json with
      | Error (id, rej) -> reject_submit t conn ~id rej
      | Ok (P.Ping id) -> send conn (P.event ~id ~event:"pong" [])
      | Ok (P.Stats id) -> start_poll t ~reply:(Some (conn, id))
      | Ok (P.Shutdown id) ->
          t.shutting <- true;
          send conn (P.event ~id ~event:"shutting_down" [])
      | Ok (P.Submit s) -> handle_submit t conn s)

let time_out_request t (r : req) =
  send r.rconn
    (P.error ~id:r.rid
       (P.reject "timeout" "request exceeded its budget after %d/%d artifacts"
          r.results_fwd r.total));
  settle_request t r;
  Telemetry.timed_out t.telemetry ~cid:r.rconn.cid

let check_timeouts t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun r ->
      match r.deadline with
      | Some d when (not r.settled) && now > d -> time_out_request t r
      | _ -> ())
    t.live;
  t.live <- List.filter (fun r -> not r.settled) t.live

(* --- shard frames ------------------------------------------------------ *)

let close_sub t w (r : req) sid =
  Hashtbl.remove t.subs sid;
  w.inflight <- max 0 (w.inflight - 1);
  r.subs_open <- max 0 (r.subs_open - 1)

let handle_worker_frame t w payload =
  w.last_seen <- Unix.gettimeofday ();
  match Jsonx.parse payload with
  | Error _ -> () (* a corrupt frame surfaces as a Frame_error upstream *)
  | Ok json -> (
      let id = Option.value ~default:"" (Jsonx.string_member "id" json) in
      let event = Jsonx.string_member "event" json in
      match event with
      | Some "pong" | Some "accepted" | Some "shutting_down" -> ()
      | Some "stats" -> (
          (match Jsonx.member "stats" json with
          | Some pool -> w.last_pool <- Some pool
          | None -> ());
          match Hashtbl.find_opt t.polls id with
          | None -> ()
          | Some p ->
              (match Jsonx.member "stats" json with
              | Some pool -> p.p_pools <- pool :: p.p_pools
              | None -> ());
              p.p_pending <- List.filter (fun s -> s <> w.slot) p.p_pending;
              if p.p_pending = [] then finish_poll t p)
      | Some "result" -> (
          match Hashtbl.find_opt t.subs id with
          | None -> ()
          | Some s ->
              let r = s.s_req in
              if not r.settled then begin
                let artifact =
                  Option.value ~default:""
                    (Jsonx.string_member "artifact" json)
                in
                let data =
                  Option.value ~default:"" (Jsonx.string_member "data" json)
                in
                send r.rconn (P.result ~id:r.rid ~artifact ~data);
                r.results_fwd <- r.results_fwd + 1
              end)
      | Some "done" -> (
          match Hashtbl.find_opt t.subs id with
          | None -> ()
          | Some s ->
              let r = s.s_req in
              close_sub t w r id;
              if (not r.settled) && r.subs_open = 0 then begin
                let wall = Unix.gettimeofday () -. r.rt0 in
                send r.rconn (P.done_ ~id:r.rid ~wall_s:wall);
                settle_request t r;
                Telemetry.completed t.telemetry ~cid:r.rconn.cid ~wall
              end)
      | Some "error" -> (
          match Hashtbl.find_opt t.subs id with
          | None -> ()
          | Some s ->
              let r = s.s_req in
              close_sub t w r id;
              if not r.settled then begin
                let code =
                  Option.value ~default:"job_failed"
                    (Jsonx.string_member "code" json)
                in
                let message =
                  Option.value ~default:"" (Jsonx.string_member "message" json)
                in
                send r.rconn (P.error ~id:r.rid (P.reject code "%s" message));
                settle_request t r;
                if code = "timeout" then
                  Telemetry.timed_out t.telemetry ~cid:r.rconn.cid
                else Telemetry.failed t.telemetry ~cid:r.rconn.cid
              end)
      | Some _ | None -> ())

(* --- socket plumbing --------------------------------------------------- *)

let drop_conn t conn =
  if not conn.dropped then begin
    conn.dropped <- true;
    Telemetry.client_disconnected t.telemetry ~cid:conn.cid;
    List.iter (fun r -> if r.rconn == conn then settle_request t r) t.live;
    t.live <- List.filter (fun r -> not r.settled) t.live;
    (* polls that would answer this client resolve to nowhere *)
    Hashtbl.fold (fun _ p acc -> p :: acc) t.polls []
    |> List.iter (fun p ->
           match p.p_reply with
           | Some (c, _) when c == conn -> Hashtbl.remove t.polls p.p_id
           | _ -> ());
    Frameio.close conn.io;
    t.conns <- List.filter (fun c -> not (c == conn)) t.conns
  end

let read_conn t conn =
  match Frameio.read_step conn.io ~on_frame:(handle_client_frame t conn) with
  | `Ok | `Closed -> ()
  | `Eof | `Io_error -> drop_conn t conn
  | `Frame_error msg ->
      send conn (P.error ~id:"" (P.reject "protocol" "%s" msg));
      ignore (Frameio.write_step conn.io);
      drop_conn t conn

let read_worker t w =
  match Frameio.read_step w.wio ~on_frame:(handle_worker_frame t w) with
  | `Ok | `Closed -> ()
  | `Eof | `Io_error | `Frame_error _ -> on_worker_gone t w

let accept_loop t listener ~peer_name =
  let rec go () =
    match Unix.accept ~cloexec:true listener with
    | fd, addr ->
        Unix.set_nonblock fd;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        let peer =
          match addr with
          | Unix.ADDR_UNIX _ -> peer_name
          | Unix.ADDR_INET (host, port) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
        in
        let conn =
          {
            io = Frameio.create ~max_frame:t.cfg.max_frame fd;
            cid;
            outstanding = 0;
            dropped = false;
          }
        in
        Telemetry.client_connected t.telemetry ~cid ~peer;
        t.conns <- conn :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* --- heartbeats and ticks ---------------------------------------------- *)

let tick t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun w ->
      if now -. w.last_seen > dead_after_s then on_worker_gone t w
      else if
        now -. w.last_seen > heartbeat_every_s
        && now -. w.last_ping > heartbeat_every_s
      then begin
        w.last_ping <- now;
        Frameio.send w.wio
          (Jsonx.Obj [ ("op", Jsonx.Str "ping"); ("id", Jsonx.Str "hb") ])
      end)
    (live_workers t);
  match t.cfg.stats_file with
  | Some _
    when (not t.stopping)
         && now -. t.last_stats >= t.cfg.stats_every_s
         && not
              (Hashtbl.fold
                 (fun _ p acc -> acc || p.p_reply = None)
                 t.polls false) ->
      t.last_stats <- now;
      start_poll t ~reply:None
  | _ -> ()

(* --- main loop --------------------------------------------------------- *)

let interrupted = Atomic.make false

let run ?(on_ready = fun () -> ()) ~make_exec ~workers (cfg : Server.config) =
  if workers < 1 then invalid_arg "Supervisor.run: workers must be >= 1";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      cfg;
      make_exec;
      telemetry = Telemetry.create ();
      workers = Array.make workers None;
      subs = Hashtbl.create 64;
      polls = Hashtbl.create 8;
      wake_r;
      wake_w;
      listeners = [];
      tcp_l = None;
      conns = [];
      live = [];
      outstanding = 0;
      shutting = false;
      stopping = false;
      stop_deadline = 0.0;
      next_cid = 1;
      next_sid = 0;
      next_pid = 0;
      last_stats = Unix.gettimeofday ();
    }
  in
  let wake () =
    try ignore (Unix.write_substring t.wake_w "x" 0 1)
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
    ->
      ()
  in
  let drain_wake () =
    let buf = Bytes.create 256 in
    let rec go () =
      match Unix.read t.wake_r buf 0 (Bytes.length buf) with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  (* Listeners must exist before the forks so the shards can close their
     inherited copies; the shards themselves never accept. *)
  let unix_l = Server.unix_listener cfg.socket_path in
  let tcp_l = Option.map Server.tcp_listener cfg.tcp_port in
  t.listeners <- (unix_l :: Option.to_list tcp_l);
  t.tcp_l <- tcp_l;
  (* Every shard is forked before any domain can exist in this process —
     and the supervisor never spawns one, which is what keeps re-forking
     crashed shards legal for the life of the daemon. *)
  for slot = 0 to workers - 1 do
    spawn t slot ~restarts:0 ~routed:0
  done;
  Atomic.set interrupted false;
  let on_signal _ =
    Atomic.set interrupted true;
    wake ()
  in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  on_ready ();
  let listeners_open = ref true in
  let close_listeners () =
    if !listeners_open then begin
      listeners_open := false;
      List.iter close_quiet t.listeners
    end
  in
  let finished () =
    t.stopping
    && List.for_all (fun w -> not w.up)
         (Array.to_list t.workers |> List.filter_map Fun.id)
    && List.for_all (fun c -> not (Frameio.pending_out c.io)) t.conns
  in
  let rec loop () =
    if Atomic.get interrupted then t.shutting <- true;
    if t.shutting then close_listeners ();
    (* drained: snapshot final telemetry from the shards' last stats
       responses, then tell every shard to exit *)
    if t.shutting && (not t.stopping) && t.outstanding = 0 then begin
      t.stopping <- true;
      t.stop_deadline <- Unix.gettimeofday () +. stop_grace_s;
      write_stats_file t (aggregate t (last_pools t));
      List.iter
        (fun w ->
          Frameio.send w.wio
            (Jsonx.Obj
               [ ("op", Jsonx.Str "shutdown"); ("id", Jsonx.Str "bye") ]))
        (live_workers t)
    end;
    if t.stopping && Unix.gettimeofday () > t.stop_deadline then
      List.iter (fun w -> on_worker_gone t w) (live_workers t);
    if not (finished ()) then begin
      let worker_fds = List.map (fun w -> Frameio.fd w.wio) (live_workers t) in
      let reads =
        (t.wake_r :: (if !listeners_open then t.listeners else []))
        @ worker_fds
        @ List.map (fun c -> Frameio.fd c.io) t.conns
      in
      let writes =
        List.filter_map
          (fun w ->
            if Frameio.pending_out w.wio then Some (Frameio.fd w.wio)
            else None)
          (live_workers t)
        @ List.filter_map
            (fun c ->
              if Frameio.pending_out c.io then Some (Frameio.fd c.io)
              else None)
            t.conns
      in
      (* Heartbeats need a periodic tick even when idle; 2 s matches the
         ping cadence. Live requests and the stopping grace window want a
         snappier 200 ms. *)
      let timeout =
        if t.live <> [] || t.stopping || Hashtbl.length t.polls > 0 then 0.2
        else heartbeat_every_s
      in
      let readable, writable, _ =
        match Unix.select reads writes [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_r readable then drain_wake ();
      if !listeners_open then
        List.iter
          (fun l ->
            if List.mem l readable then
              accept_loop t l
                ~peer_name:
                  (if Some l = t.tcp_l then "tcp" else cfg.socket_path))
          t.listeners;
      List.iter
        (fun w ->
          if w.up && List.mem (Frameio.fd w.wio) readable then read_worker t w)
        (live_workers t);
      List.iter
        (fun c ->
          if (not c.dropped) && List.mem (Frameio.fd c.io) readable then
            read_conn t c)
        t.conns;
      check_timeouts t;
      tick t;
      List.iter
        (fun w ->
          if
            w.up
            && (List.mem (Frameio.fd w.wio) writable
               || Frameio.pending_out w.wio)
          then
            match Frameio.write_step w.wio with
            | `Ok -> ()
            | `Io_error -> on_worker_gone t w)
        (live_workers t);
      List.iter
        (fun c ->
          if (not c.dropped) && Frameio.pending_out c.io then
            match Frameio.write_step c.io with
            | `Ok -> ()
            | `Io_error -> drop_conn t c)
        t.conns;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      close_listeners ();
      List.iter
        (fun w ->
          if w.up then begin
            w.up <- false;
            Frameio.close w.wio;
            reap w
          end)
        (Array.to_list t.workers |> List.filter_map Fun.id);
      List.iter (fun c -> drop_conn t c) t.conns;
      close_quiet t.wake_r;
      close_quiet t.wake_w;
      (try Sys.remove cfg.socket_path with Sys_error _ -> ());
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigpipe old_pipe)
    loop;
  aggregate t (last_pools t)
