(** Blocking client for the serve protocol, used by [vliw_vp submit], the
    load generator and the tests.

    One connection pipelines freely: {!submit_async} registers a request
    and returns immediately; {!await} reads frames — routing events for
    other in-flight requests to their own state — until the given request
    settles. Hundreds of requests can be in flight on one socket. *)

type t

val connect : string -> t
(** Connect to a Unix socket path. *)

val connect_tcp : host:string -> port:int -> t

val close : t -> unit

type outcome = {
  results : (string * string) list;
      (** [(artifact, data)] in {e request} order — concatenating the data
          fields of an ["all"] submit reproduces [vliw_vp all] byte for
          byte. *)
  error : (string * string) option;  (** [(code, message)]; results may
          still hold the artifacts that finished before the error. *)
  wall_s : float;  (** server-reported wall time (successful requests) *)
  queue_depth : int;  (** server queue depth at admission *)
}

val submit_spec :
  ?id:string ->
  ?experiments:string list ->
  ?benchmarks:string list ->
  ?width:int ->
  ?seed:int ->
  ?threshold:float ->
  ?csv:bool ->
  ?overrides:(string * Jsonx.t) list ->
  ?sweeps:(string * (string * (string * Jsonx.t) list) list) list ->
  ?timeout_s:float ->
  unit ->
  Protocol.submit
(** A submit request with CLI-equivalent defaults (width 4, seed 42,
    threshold 0.65, all experiments, all benchmarks). Expands and
    validates [experiments] (a [sweep:NAME] experiment is accepted when
    [sweeps] defines NAME); raises [Invalid_argument] on an unknown name.
    [overrides] are extra machine-config fields sent in the request's
    [config] object; [sweeps] defines custom sweeps as
    [(name, points)] with each point [(label, overrides)] — both are
    validated server-side ([bad_config] / [bad_sweep]). An empty [id] is
    auto-assigned at submit time. *)

val submit : t -> Protocol.submit -> outcome
(** Submit and block until [done]/[error]. *)

val submit_async : t -> Protocol.submit -> string
(** Send the request, return its id (auto-assigned if the spec's was
    empty). Pair with {!await}. *)

val await : t -> id:string -> outcome
(** Block until the given in-flight request settles. Raises
    [Invalid_argument] for an id not returned by {!submit_async} (or
    already awaited), [Failure] if the server closes the connection. *)

val stats : t -> Jsonx.t
(** The server's telemetry snapshot. *)

val ping : t -> unit

val shutdown : t -> unit
(** Ask the server to drain and exit; returns once acknowledged. *)
